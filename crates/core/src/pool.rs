//! The crate's shared fan-out primitive: an order-preserving scoped
//! thread pool over an indexed work list.
//!
//! Both embarrassingly parallel layers — the scenario sweep
//! ([`crate::sweep::run_sweep`]) and the scheduler search's random
//! restarts ([`crate::schedsearch::run_search_parallel`]) — drain a shared
//! atomic counter and write results into their original slots, so the
//! output order (and therefore every derived report byte) is identical
//! for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Compute `f(0..count)` across `threads` workers, returning the results
/// in index order. `f` must be a pure function of its index for the
/// output to be thread-count invariant — which every caller's determinism
/// test asserts.
///
/// # Panics
///
/// Panics if a worker panicked (poisoning the slot mutex).
pub(crate) fn parallel_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(count.max(1));
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let result = f(index);
                slots.lock().expect("pool worker panicked")[index] = Some(result);
            });
        }
    });

    slots
        .into_inner()
        .expect("pool worker panicked")
        .into_iter()
        .map(|slot| slot.expect("every index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_for_any_worker_count() {
        let serial = parallel_indexed(37, 1, |i| i * i);
        for threads in [2, 4, 16, 64] {
            assert_eq!(parallel_indexed(37, threads, |i| i * i), serial);
        }
    }

    #[test]
    fn empty_and_single_item_lists_work() {
        assert_eq!(parallel_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
