//! Executable statements of the paper's properties.
//!
//! * **F1–F3** (§4): the failure-discovery conditions, checked over the
//!   outcomes of the *correct* nodes of a run.
//! * **G1–G3** (§3.2): the assignment properties of authentication, checked
//!   over key stores and signed messages.
//!
//! * **Degradation contract** (§7 / ref \[7\]): at most two decision values,
//!   one of which is the default — checked by [`check_degradable`].
//!
//! These checkers are the backbone of experiment T4 (the property matrix):
//! every adversary scenario asserts `check_fd` on its outcomes.

use crate::keys::KeyStore;
use crate::outcome::Outcome;
use fd_crypto::{Signature, SignatureScheme};
use fd_simnet::NodeId;

/// Result of evaluating F1–F3 on one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdPropReport {
    /// F1: every correct node decided or discovered.
    pub f1_termination: bool,
    /// F2: *if* no correct node discovered, all correct deciders agree.
    /// Vacuously true when someone discovered.
    pub f2_agreement: bool,
    /// F3: *if* no correct node discovered and the sender is correct, every
    /// correct node decided the sender's value. Vacuous otherwise.
    pub f3_validity: bool,
    /// Whether any correct node discovered a failure.
    pub any_discovery: bool,
}

impl FdPropReport {
    /// All three properties hold.
    pub fn all_ok(&self) -> bool {
        self.f1_termination && self.f2_agreement && self.f3_validity
    }
}

/// Evaluate F1–F3 over the outcomes of the correct nodes.
///
/// `sender_value` must be `Some` when the sender is correct (its initial
/// value); pass `None` for a faulty sender (F3 is then vacuous).
pub fn check_fd(correct_outcomes: &[Outcome], sender_value: Option<&[u8]>) -> FdPropReport {
    let f1_termination = correct_outcomes.iter().all(|o| o.is_terminal());
    let any_discovery = correct_outcomes.iter().any(|o| o.is_discovered());

    let decided: Vec<&[u8]> = correct_outcomes
        .iter()
        .filter_map(|o| o.decided())
        .collect();

    let f2_agreement = any_discovery || decided.windows(2).all(|w| w[0] == w[1]);

    let f3_validity = any_discovery
        || match sender_value {
            None => true, // faulty sender: vacuous
            Some(v) => decided.iter().all(|d| *d == v),
        };

    FdPropReport {
        f1_termination,
        f2_agreement,
        f3_validity,
        any_discovery,
    }
}

/// Result of evaluating the assignment properties G1–G3 for one signed
/// message across the key stores of the correct nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignReport {
    /// Which node each correct store assigns the message to (scan), in the
    /// order the stores were given.
    pub assignees: Vec<Option<NodeId>>,
    /// G3: all correct nodes that assign at all assign to the same node.
    pub consistent: bool,
}

/// Evaluate assignment consistency (the G3 question) of `(msg, sig)` across
/// several correct nodes' stores.
pub fn check_assignment(
    scheme: &dyn SignatureScheme,
    stores: &[&KeyStore],
    msg: &[u8],
    sig: &Signature,
) -> AssignReport {
    let assignees: Vec<Option<NodeId>> = stores
        .iter()
        .map(|s| s.find_assignee(scheme, msg, sig))
        .collect();
    let mut seen: Option<NodeId> = None;
    let mut consistent = true;
    for a in assignees.iter().flatten() {
        match seen {
            None => seen = Some(*a),
            Some(prev) if prev != *a => {
                consistent = false;
                break;
            }
            _ => {}
        }
    }
    AssignReport {
        assignees,
        consistent,
    }
}

/// Result of evaluating the degradable-agreement contract on one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradablePropReport {
    /// Every correct node terminated (decided or discovered).
    pub termination: bool,
    /// At most two distinct decision values among the correct nodes.
    pub at_most_two_values: bool,
    /// If exactly two distinct values were decided, one is the default.
    pub one_is_default: bool,
    /// Whether any correct node discovered a failure.
    pub any_discovery: bool,
}

impl DegradablePropReport {
    /// The degradation contract holds.
    pub fn all_ok(&self) -> bool {
        self.termination && self.at_most_two_values && self.one_is_default
    }
}

/// Evaluate the Vaidya–Pradhan degradation contract (as instantiated by
/// [`crate::ba::DegradableNode`]): correct nodes decide **at most two**
/// distinct values, and if two, one of them is `default_value`.
///
/// Like F2/F3, the value conditions are vacuous once a correct node
/// discovers a failure (discovery is itself the strongest admissible
/// outcome under local authentication).
pub fn check_degradable(
    correct_outcomes: &[Outcome],
    default_value: &[u8],
) -> DegradablePropReport {
    let termination = correct_outcomes.iter().all(|o| o.is_terminal());
    let any_discovery = correct_outcomes.iter().any(|o| o.is_discovered());

    let mut distinct: Vec<&[u8]> = Vec::new();
    for v in correct_outcomes.iter().filter_map(|o| o.decided()) {
        if !distinct.contains(&v) {
            distinct.push(v);
        }
    }
    let at_most_two_values = any_discovery || distinct.len() <= 2;
    let one_is_default = any_discovery || distinct.len() < 2 || distinct.contains(&default_value);

    DegradablePropReport {
        termination,
        at_most_two_values,
        one_is_default,
        any_discovery,
    }
}

/// G2: a message signed by a **correct** node `signer` is assigned to it
/// by *every* correct node. `stores` are the correct nodes' stores and
/// `(msg, sig)` the correct node's genuinely signed message.
pub fn check_g2(
    scheme: &dyn SignatureScheme,
    stores: &[&KeyStore],
    signer: NodeId,
    msg: &[u8],
    sig: &Signature,
) -> bool {
    stores.iter().all(|s| s.assigns(scheme, signer, msg, sig))
}

/// G1 for one store: if the store assigns `(msg, sig)` to `claimed` and
/// `claimed` is correct, then `claimed` really signed it. The caller passes
/// `really_signed` (ground truth from the test harness).
pub fn check_g1(
    scheme: &dyn SignatureScheme,
    store: &KeyStore,
    claimed: NodeId,
    msg: &[u8],
    sig: &Signature,
    really_signed: bool,
) -> bool {
    // G1 is conditional: assignment to a correct node implies authorship.
    !store.assigns(scheme, claimed, msg, sig) || really_signed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::DiscoveryReason;

    fn d(v: &[u8]) -> Outcome {
        Outcome::Decided(v.to_vec())
    }

    fn disc() -> Outcome {
        Outcome::Discovered(DiscoveryReason::BadSignature)
    }

    #[test]
    fn all_agree_passes() {
        let r = check_fd(&[d(b"v"), d(b"v"), d(b"v")], Some(b"v"));
        assert!(r.all_ok());
        assert!(!r.any_discovery);
    }

    #[test]
    fn disagreement_without_discovery_fails_f2() {
        let r = check_fd(&[d(b"v"), d(b"w")], Some(b"v"));
        assert!(!r.f2_agreement);
        assert!(!r.all_ok());
    }

    #[test]
    fn discovery_makes_f2_f3_vacuous() {
        let r = check_fd(&[d(b"v"), d(b"w"), disc()], Some(b"v"));
        assert!(r.f2_agreement);
        assert!(r.f3_validity);
        assert!(r.any_discovery);
        assert!(r.all_ok());
    }

    #[test]
    fn pending_fails_f1() {
        let r = check_fd(&[d(b"v"), Outcome::Pending], Some(b"v"));
        assert!(!r.f1_termination);
    }

    #[test]
    fn wrong_value_with_correct_sender_fails_f3() {
        let r = check_fd(&[d(b"w"), d(b"w")], Some(b"v"));
        assert!(r.f2_agreement);
        assert!(!r.f3_validity);
    }

    #[test]
    fn faulty_sender_makes_f3_vacuous() {
        let r = check_fd(&[d(b"w"), d(b"w")], None);
        assert!(r.f3_validity);
    }

    #[test]
    fn degradable_contract_cases() {
        // One value: fine.
        let r = check_degradable(&[d(b"v"), d(b"v")], b"dflt");
        assert!(r.all_ok());
        // Two values, one default: degraded but within contract.
        let r = check_degradable(&[d(b"v"), d(b"dflt")], b"dflt");
        assert!(r.all_ok());
        // Two values, neither default: violation.
        let r = check_degradable(&[d(b"v"), d(b"w")], b"dflt");
        assert!(!r.one_is_default);
        assert!(!r.all_ok());
        // Three values: violation.
        let r = check_degradable(&[d(b"v"), d(b"w"), d(b"dflt")], b"dflt");
        assert!(!r.at_most_two_values);
        // Discovery makes the value conditions vacuous.
        let r = check_degradable(&[d(b"v"), d(b"w"), disc()], b"dflt");
        assert!(r.all_ok());
        assert!(r.any_discovery);
        // Pending fails termination.
        let r = check_degradable(&[Outcome::Pending], b"dflt");
        assert!(!r.termination);
    }

    #[test]
    fn assignment_consistency() {
        use crate::keys::Keyring;
        use fd_crypto::SchnorrScheme;
        let scheme = SchnorrScheme::test_tiny();
        let rings: Vec<Keyring> = (0..3)
            .map(|i| Keyring::generate(&scheme, NodeId(i), 1))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        let s0 = KeyStore::global(NodeId(0), &pks);
        let s1 = KeyStore::global(NodeId(1), &pks);
        let sig = scheme.sign(&rings[2].sk, b"m").unwrap();
        let rep = check_assignment(&scheme, &[&s0, &s1], b"m", &sig);
        assert!(rep.consistent);
        assert_eq!(rep.assignees, vec![Some(NodeId(2)), Some(NodeId(2))]);

        // An equivocated-store world: s1 thinks node 2's key is different.
        let mut s1_bad = KeyStore::global(NodeId(1), &pks);
        s1_bad.accept(NodeId(2), rings[0].pk.clone());
        let rep = check_assignment(&scheme, &[&s0, &s1_bad], b"m", &sig);
        // s1_bad cannot assign at all (scan finds nothing): still
        // "consistent" in G3 terms but with a gap.
        assert!(rep.consistent);
        assert_eq!(rep.assignees[1], None);
    }

    #[test]
    fn g2_after_keydist_holds_for_correct_signers() {
        use crate::runner::Cluster;
        use std::sync::Arc;
        let c = Cluster::new(4, 1, Arc::new(fd_crypto::SchnorrScheme::test_tiny()), 5);
        let kd = c.run_key_distribution();
        let stores: Vec<&KeyStore> = kd.stores.iter().flatten().collect();
        let scheme = c.scheme.as_ref();
        for i in 0..4u16 {
            let ring = c.keyring(NodeId(i));
            let sig = scheme.sign(&ring.sk, b"m").unwrap();
            assert!(check_g2(scheme, &stores, NodeId(i), b"m", &sig), "node {i}");
            // And nobody assigns it to anyone else.
            for j in (0..4u16).filter(|&j| j != i) {
                assert!(!check_g2(scheme, &stores, NodeId(j), b"m", &sig));
            }
        }
    }

    #[test]
    fn g1_conditional_form() {
        use crate::keys::Keyring;
        use fd_crypto::SchnorrScheme;
        let scheme = SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(0), 1);
        let store = KeyStore::global(NodeId(1), std::slice::from_ref(&ring.pk));
        let sig = scheme.sign(&ring.sk, b"m").unwrap();
        // Assigned and really signed: G1 holds.
        assert!(check_g1(&scheme, &store, NodeId(0), b"m", &sig, true));
        // Assigned but NOT really signed would be a G1 violation.
        assert!(!check_g1(&scheme, &store, NodeId(0), b"m", &sig, false));
        // Not assigned: vacuous.
        assert!(check_g1(&scheme, &store, NodeId(0), b"x", &sig, false));
    }
}
