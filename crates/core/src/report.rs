//! Bench-trajectory rendering: the `lafd report` backend.
//!
//! Parses committed `BENCH_*.json` baselines (schema `lafd-bench-v1`,
//! produced by `lafd bench`) and renders the wall-time trajectory as a
//! markdown or HTML table — one row per `(protocol × n × engine)` cell,
//! one column per baseline, with per-cell deltas against the previous
//! column. Counters (messages/bytes/rounds) are checked by
//! `scripts/check-bench-regression.sh`; this module is about making the
//! *trend* a first-class rendered artifact instead of archaeology over
//! committed JSON files.

use crate::wire::Value;
use std::collections::BTreeMap;

/// One benchmark cell: a `(protocol, n, engine)` measurement from a
/// `lafd bench` results array.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Protocol wire name (e.g. `dolev_strong`).
    pub protocol: String,
    /// System size.
    pub n: u64,
    /// Engine name (`sync` or `event`).
    pub engine: String,
    /// Wall time of the measured run, microseconds.
    pub wall_us: u64,
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent.
    pub bytes: u64,
}

/// One parsed benchmark document (one `BENCH_*.json` file or one fresh
/// in-process run).
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// Column label: the document's `label` field when present, otherwise
    /// digits extracted from the file stem (`BENCH_5` → `5`).
    pub label: String,
    /// Git revision recorded by `lafd bench --out`, when present.
    pub git_rev: Option<String>,
    /// The measured cells.
    pub cells: Vec<BenchCell>,
}

impl BenchDoc {
    /// Assemble a document from already-measured cells (the `--fresh`
    /// path of `lafd report`).
    pub fn from_cells(label: String, git_rev: Option<String>, cells: Vec<BenchCell>) -> Self {
        BenchDoc {
            label,
            git_rev,
            cells,
        }
    }

    /// Numeric ordering key: the first integer embedded in the label
    /// (`5` → 5, `PR7` → 7), or `u64::MAX` for labels without one, so
    /// unnumbered columns sort last.
    pub fn order_key(&self) -> (u64, String) {
        let digits: String = {
            let mut found = String::new();
            for c in self.label.chars() {
                if c.is_ascii_digit() {
                    found.push(c);
                } else if !found.is_empty() {
                    break;
                }
            }
            found
        };
        (digits.parse().unwrap_or(u64::MAX), self.label.clone())
    }
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_int)
        .and_then(|i| u64::try_from(i).ok())
        .ok_or_else(|| format!("bench document: missing or invalid \"{key}\""))
}

/// Parse one `lafd-bench-v1` document. `name_hint` is the file stem used
/// for the column label when the document has no `label` field.
pub fn parse_bench_doc(name_hint: &str, raw: &str) -> Result<BenchDoc, String> {
    let value = Value::parse(raw)?;
    match value.get("schema").and_then(Value::as_str) {
        Some("lafd-bench-v1") => {}
        Some(other) => return Err(format!("bench document: unknown schema \"{other}\"")),
        None => return Err("bench document: missing \"schema\"".to_string()),
    }
    let label = match value.get("label").and_then(Value::as_str) {
        Some(label) => label.to_string(),
        None => {
            let digits: String = name_hint.chars().filter(char::is_ascii_digit).collect();
            if digits.is_empty() {
                name_hint.to_string()
            } else {
                digits
            }
        }
    };
    let git_rev = value
        .get("git_rev")
        .and_then(Value::as_str)
        .map(str::to_string);
    let results = value
        .get("results")
        .and_then(Value::as_arr)
        .ok_or_else(|| "bench document: missing \"results\" array".to_string())?;
    let mut cells = Vec::with_capacity(results.len());
    for cell in results {
        cells.push(BenchCell {
            protocol: cell
                .get("protocol")
                .and_then(Value::as_str)
                .ok_or_else(|| "bench cell: missing \"protocol\"".to_string())?
                .to_string(),
            n: u64_field(cell, "n")?,
            engine: cell
                .get("engine")
                .and_then(Value::as_str)
                .ok_or_else(|| "bench cell: missing \"engine\"".to_string())?
                .to_string(),
            wall_us: u64_field(cell, "wall_us")?,
            messages: u64_field(cell, "messages")?,
            bytes: u64_field(cell, "bytes")?,
        });
    }
    Ok(BenchDoc {
        label,
        git_rev,
        cells,
    })
}

/// Format microseconds human-readably with integer math (`850 µs`,
/// `12.3 ms`, `37.31 s`).
fn fmt_wall(us: u64) -> String {
    if us >= 1_000_000 {
        let centi = (us + 5_000) / 10_000;
        format!("{}.{:02} s", centi / 100, centi % 100)
    } else if us >= 1_000 {
        let tenths = (us + 50) / 100;
        format!("{}.{} ms", tenths / 10, tenths % 10)
    } else {
        format!("{us} µs")
    }
}

/// Signed wall-time delta in tenths of a percent (`+12.5%` → 125), or
/// `None` when the base is zero.
fn delta_tenths(old: u64, new: u64) -> Option<i64> {
    if old == 0 {
        return None;
    }
    let diff = i128::from(new) - i128::from(old);
    i64::try_from(diff * 1000 / i128::from(old)).ok()
}

fn fmt_delta(tenths: i64) -> String {
    let sign = if tenths >= 0 { '+' } else { '−' };
    let mag = tenths.unsigned_abs();
    format!("{sign}{}.{}%", mag / 10, mag % 10)
}

/// A trajectory over several benchmark documents, ordered oldest to
/// newest by [`BenchDoc::order_key`].
#[derive(Debug)]
pub struct TrendReport {
    docs: Vec<BenchDoc>,
}

type CellKey = (String, u64, String);

impl TrendReport {
    /// Build a trajectory, sorting the documents into label order.
    pub fn new(mut docs: Vec<BenchDoc>) -> Self {
        docs.sort_by_key(BenchDoc::order_key);
        TrendReport { docs }
    }

    /// The ordered documents.
    pub fn docs(&self) -> &[BenchDoc] {
        &self.docs
    }

    /// All `(protocol, n, engine)` row keys across the documents, in
    /// stable order.
    fn row_keys(&self) -> Vec<CellKey> {
        let mut keys: BTreeMap<CellKey, ()> = BTreeMap::new();
        for doc in &self.docs {
            for cell in &doc.cells {
                keys.insert((cell.protocol.clone(), cell.n, cell.engine.clone()), ());
            }
        }
        keys.into_keys().collect()
    }

    fn cell_of<'a>(&self, doc: &'a BenchDoc, key: &CellKey) -> Option<&'a BenchCell> {
        doc.cells
            .iter()
            .find(|c| c.protocol == key.0 && c.n == key.1 && c.engine == key.2)
    }

    /// How many rendered cells carry a delta against the previous column —
    /// the CI smoke asserts this is non-zero over the committed baselines.
    pub fn delta_count(&self) -> usize {
        let mut count = 0;
        for key in self.row_keys() {
            let mut prev: Option<u64> = None;
            for doc in &self.docs {
                if let Some(cell) = self.cell_of(doc, &key) {
                    if let Some(old) = prev {
                        if delta_tenths(old, cell.wall_us).is_some() {
                            count += 1;
                        }
                    }
                    prev = Some(cell.wall_us);
                }
            }
        }
        count
    }

    fn column_title(doc: &BenchDoc) -> String {
        match &doc.git_rev {
            Some(rev) => format!("{} ({rev})", doc.label),
            None => doc.label.clone(),
        }
    }

    /// Render the trajectory as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::from("# lafd bench trajectory\n\n");
        if self.docs.is_empty() {
            s.push_str("No benchmark documents found.\n");
            return s;
        }
        s.push_str(
            "Wall time per (protocol × n × engine) cell; deltas vs the previous column.\n\n",
        );
        s.push_str("| protocol | n | engine |");
        for doc in &self.docs {
            s.push_str(&format!(" {} |", Self::column_title(doc)));
        }
        s.push_str("\n|---|---|---|");
        for _ in &self.docs {
            s.push_str("---|");
        }
        s.push('\n');
        for key in self.row_keys() {
            s.push_str(&format!("| {} | {} | {} |", key.0, key.1, key.2));
            let mut prev: Option<u64> = None;
            for doc in &self.docs {
                match self.cell_of(doc, &key) {
                    None => s.push_str(" — |"),
                    Some(cell) => {
                        let delta = prev
                            .and_then(|old| delta_tenths(old, cell.wall_us))
                            .map(|t| format!(" ({})", fmt_delta(t)))
                            .unwrap_or_default();
                        s.push_str(&format!(" {}{} |", fmt_wall(cell.wall_us), delta));
                        prev = Some(cell.wall_us);
                    }
                }
            }
            s.push('\n');
        }
        s
    }

    /// Render the trajectory as a standalone HTML page (same table as
    /// [`TrendReport::to_markdown`]).
    pub fn to_html(&self) -> String {
        let mut s = String::from(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
             <title>lafd bench trajectory</title>\n<style>\
             body{font-family:sans-serif;margin:2em}\
             table{border-collapse:collapse}\
             td,th{border:1px solid #999;padding:4px 10px;text-align:right}\
             th{background:#eee}td:nth-child(-n+3){text-align:left}\
             .up{color:#b00}.down{color:#080}\
             </style></head><body>\n<h1>lafd bench trajectory</h1>\n\
             <p>Wall time per (protocol × n × engine) cell; deltas vs the \
             previous column.</p>\n<table>\n<tr><th>protocol</th><th>n</th>\
             <th>engine</th>",
        );
        for doc in &self.docs {
            s.push_str(&format!("<th>{}</th>", Self::column_title(doc)));
        }
        s.push_str("</tr>\n");
        for key in self.row_keys() {
            s.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td>",
                key.0, key.1, key.2
            ));
            let mut prev: Option<u64> = None;
            for doc in &self.docs {
                match self.cell_of(doc, &key) {
                    None => s.push_str("<td>—</td>"),
                    Some(cell) => {
                        let delta = prev
                            .and_then(|old| delta_tenths(old, cell.wall_us))
                            .map(|t| {
                                let class = if t > 0 { "up" } else { "down" };
                                format!(" <span class=\"{class}\">({})</span>", fmt_delta(t))
                            })
                            .unwrap_or_default();
                        s.push_str(&format!("<td>{}{}</td>", fmt_wall(cell.wall_us), delta));
                        prev = Some(cell.wall_us);
                    }
                }
            }
            s.push_str("</tr>\n");
        }
        s.push_str("</table>\n</body></html>\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(label: &str, wall: u64) -> BenchDoc {
        BenchDoc::from_cells(
            label.to_string(),
            Some("abc1234".to_string()),
            vec![BenchCell {
                protocol: "chain_fd".to_string(),
                n: 256,
                engine: "sync".to_string(),
                wall_us: wall,
                messages: 255,
                bytes: 1000,
            }],
        )
    }

    #[test]
    fn labels_order_numerically_not_lexically() {
        let report = TrendReport::new(vec![doc("10", 3), doc("9", 2), doc("PR7", 1)]);
        let labels: Vec<&str> = report.docs().iter().map(|d| d.label.as_str()).collect();
        assert_eq!(labels, vec!["PR7", "9", "10"]);
    }

    #[test]
    fn markdown_carries_deltas() {
        let report = TrendReport::new(vec![doc("5", 1_000), doc("7", 1_500)]);
        assert_eq!(report.delta_count(), 1);
        let md = report.to_markdown();
        assert!(md.contains("+50.0%"), "delta missing:\n{md}");
        assert!(
            md.contains("| chain_fd | 256 | sync |"),
            "row missing:\n{md}"
        );
    }

    #[test]
    fn parse_rejects_unknown_schema() {
        assert!(parse_bench_doc("BENCH_5", "{\"schema\": \"nope\"}").is_err());
    }

    #[test]
    fn parse_reads_label_git_rev_and_cells() {
        let raw = "{\"schema\": \"lafd-bench-v1\", \"label\": \"PR7\", \
                   \"git_rev\": \"deadbee\", \"results\": [\
                   {\"protocol\": \"dolev_strong\", \"n\": 1024, \"t\": 341, \
                    \"engine\": \"event\", \"scheme\": \"schnorr-tiny\", \
                    \"wall_us\": 42, \"messages\": 7, \"bytes\": 9, \
                    \"comm_rounds\": 3, \"key_allocs\": 1}]}";
        let doc = parse_bench_doc("BENCH_7", raw).unwrap();
        assert_eq!(doc.label, "PR7");
        assert_eq!(doc.git_rev.as_deref(), Some("deadbee"));
        assert_eq!(doc.cells.len(), 1);
        assert_eq!(doc.cells[0].wall_us, 42);
        assert_eq!(doc.order_key().0, 7);
    }

    #[test]
    fn filename_stem_fallback_extracts_digits() {
        let raw = "{\"schema\": \"lafd-bench-v1\", \"results\": []}";
        let doc = parse_bench_doc("BENCH_5", raw).unwrap();
        assert_eq!(doc.label, "5");
    }
}
