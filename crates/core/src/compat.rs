//! Deprecated compatibility shims for the pre-`RunSpec` execution API.
//!
//! Before the unified entry point ([`crate::spec`]), every protocol had a
//! bespoke pair of `Cluster::run_*` / `run_*_with` methods and callers
//! hand-threaded key distributions, values, and `&mut dyn FnMut`
//! substitution closures through them. Those names survive here as thin
//! one-line delegations so existing tests keep compiling; new code should
//! construct a [`RunSpec`](crate::spec::RunSpec) and call
//! [`Cluster::run`](Cluster::run) or go through a
//! [`Session`](crate::spec::Session).
//!
//! | old call | new spelling |
//! |---|---|
//! | `c.run_chain_fd(&kd, v)` | `c.run(&RunSpec::new(Protocol::ChainFd, v))` |
//! | `c.run_chain_fd_with(&kd, v, subst)` | `RunSpec::with_adversary(AdversarySpec::custom(…))` |
//! | `c.run_small_range(&kd, v, d)` | `RunSpec::new(Protocol::SmallRange, v).with_default_value(d)` |
//! | `c.run_dolev_strong(&kd, v, d)` | `RunSpec::new(Protocol::DolevStrong, v).with_default_value(d)` |
//! | `c.run_fd_to_ba(&kd, v, d)` | `RunSpec::new(Protocol::FdToBa, v).with_default_value(d)` |
//! | `c.run_degradable(&kd, v, d)` | `Cluster::run` + [`FdRunReport::grades`](crate::runner::FdRunReport::grades) |
//! | `c.run_phase_king(v, d)` | `RunSpec::new(Protocol::PhaseKing, v).with_default_value(d)` |
//! | `c.run_non_auth_fd(v)` | `RunSpec::new(Protocol::NonAuthFd, v)` |
//! | `c.run_vector_fd(&kd, vs)` | [`Cluster::run_vector`] |
//! | `sweep::run_keydist_for(&c, p)` | [`Cluster::keydist_for`] / `Session` |
//! | `sweep::run_protocol_with(…)` | [`Cluster::run_with_keys`] |
//! | `EpochManager::run_chain_fd(v)` | [`EpochManager::run_round`](crate::epoch::EpochManager::run_round) |
//!
//! The whole module is gated behind the off-by-default `compat` cargo
//! feature: build with `--features compat` to keep compiling old callers,
//! and migrate at your leisure. This module is the **only** place
//! per-protocol `run_*` variants are allowed to exist — CI greps for
//! strays elsewhere.

#![allow(deprecated)]

use crate::ba::Grade;
use crate::epoch::EpochManager;
use crate::outcome::Outcome;
use crate::runner::{Cluster, FdRunReport, KeyDistReport, Substitution};
use crate::spec::Protocol;

impl Cluster {
    /// Run the chain FD protocol (paper Fig. 2), all nodes honest.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_chain_fd(&self, keydist: &KeyDistReport, value: Vec<u8>) -> FdRunReport {
        self.run_chain_fd_with(keydist, value, &mut |_| None)
    }

    /// Chain FD with substitutions.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_chain_fd_with(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        substitute: Substitution<'_>,
    ) -> FdRunReport {
        self.dispatch(
            Protocol::ChainFd,
            Some(keydist),
            value,
            Vec::new(),
            substitute,
        )
    }

    /// Run the non-authenticated witness-relay baseline (no keys needed).
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_non_auth_fd(&self, value: Vec<u8>) -> FdRunReport {
        self.run_non_auth_fd_with(value, &mut |_| None)
    }

    /// Witness-relay baseline with substitutions.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_non_auth_fd_with(
        &self,
        value: Vec<u8>,
        substitute: Substitution<'_>,
    ) -> FdRunReport {
        self.dispatch(Protocol::NonAuthFd, None, value, Vec::new(), substitute)
    }

    /// Run the small-range FD protocol with the given default value.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_small_range(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        default_value: Vec<u8>,
    ) -> FdRunReport {
        self.run_small_range_with(keydist, value, default_value, &mut |_| None)
    }

    /// Small-range FD with substitutions.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_small_range_with(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        default_value: Vec<u8>,
        substitute: Substitution<'_>,
    ) -> FdRunReport {
        self.dispatch(
            Protocol::SmallRange,
            Some(keydist),
            value,
            default_value,
            substitute,
        )
    }

    /// Run Dolev–Strong agreement under the given key stores.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_dolev_strong(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        default_value: Vec<u8>,
    ) -> FdRunReport {
        self.run_dolev_strong_with(keydist, value, default_value, &mut |_| None)
    }

    /// Dolev–Strong with substitutions.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_dolev_strong_with(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        default_value: Vec<u8>,
        substitute: Substitution<'_>,
    ) -> FdRunReport {
        self.dispatch(
            Protocol::DolevStrong,
            Some(keydist),
            value,
            default_value,
            substitute,
        )
    }

    /// Run the Phase-King non-authenticated BA baseline (no keys needed;
    /// requires `n > 4t`).
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_phase_king(&self, value: Vec<u8>, default_value: Vec<u8>) -> FdRunReport {
        self.run_phase_king_with(value, default_value, &mut |_| None)
    }

    /// Phase King with substitutions.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_phase_king_with(
        &self,
        value: Vec<u8>,
        default_value: Vec<u8>,
        substitute: Substitution<'_>,
    ) -> FdRunReport {
        self.dispatch(Protocol::PhaseKing, None, value, default_value, substitute)
    }

    /// Run degradable (crusader/graded) agreement under the given key
    /// stores. Returns the run report plus the per-node decision grades
    /// (now also available as [`FdRunReport::grades`]).
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_degradable(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        default_value: Vec<u8>,
    ) -> (FdRunReport, Vec<Option<Grade>>) {
        self.run_degradable_with(keydist, value, default_value, &mut |_| None)
    }

    /// Degradable agreement with substitutions.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_degradable_with(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        default_value: Vec<u8>,
        substitute: Substitution<'_>,
    ) -> (FdRunReport, Vec<Option<Grade>>) {
        let report = self.dispatch(
            Protocol::Degradable,
            Some(keydist),
            value,
            default_value,
            substitute,
        );
        let grades = report.grades.clone();
        (report, grades)
    }

    /// Run the FD→BA extension (failure-free runs cost FD messages).
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_fd_to_ba(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        default_value: Vec<u8>,
    ) -> FdRunReport {
        self.run_fd_to_ba_with(keydist, value, default_value, &mut |_| None)
    }

    /// FD→BA with substitutions.
    #[deprecated(
        since = "0.2.0",
        note = "construct a fd_core::spec::RunSpec and call Cluster::run / Session::run"
    )]
    pub fn run_fd_to_ba_with(
        &self,
        keydist: &KeyDistReport,
        value: Vec<u8>,
        default_value: Vec<u8>,
        substitute: Substitution<'_>,
    ) -> FdRunReport {
        self.dispatch(
            Protocol::FdToBa,
            Some(keydist),
            value,
            default_value,
            substitute,
        )
    }

    /// Run interactive consistency — the old name of
    /// [`Cluster::run_vector`].
    #[deprecated(since = "0.3.0", note = "use Cluster::run_vector")]
    pub fn run_vector_fd(
        &self,
        keydist: &KeyDistReport,
        values: &[Vec<u8>],
    ) -> (FdRunReport, Vec<Vec<Outcome>>) {
        self.run_vector(keydist, values)
    }
}

impl EpochManager {
    /// Run one chain-FD round in the current epoch.
    #[deprecated(since = "0.2.0", note = "use EpochManager::run_round")]
    pub fn run_chain_fd(&mut self, value: Vec<u8>) -> FdRunReport {
        self.run_round(value)
    }
}

/// Run the key distribution a protocol needs on the scenario's engine,
/// always under synchronous latency and without link faults, per-link
/// overrides, or schedule overrides.
#[deprecated(since = "0.2.0", note = "use Cluster::keydist_for or a Session")]
pub fn run_keydist_for(cluster: &Cluster, protocol: Protocol) -> Option<KeyDistReport> {
    cluster.keydist_for(protocol)
}

/// Run one protocol on a configured cluster with optional substitutions —
/// the pre-`RunSpec` dispatch point.
///
/// # Panics
///
/// Panics if the protocol needs keys and `keydist` is `None`.
#[deprecated(since = "0.2.0", note = "use Cluster::run_with_keys with a RunSpec")]
pub fn run_protocol_with(
    cluster: &Cluster,
    protocol: Protocol,
    keydist: Option<&KeyDistReport>,
    value: Vec<u8>,
    default_value: Vec<u8>,
    substitute: Substitution<'_>,
) -> FdRunReport {
    cluster.dispatch(protocol, keydist, value, default_value, substitute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunSpec;
    use std::sync::Arc;

    fn cluster(n: usize, t: usize) -> Cluster {
        Cluster::new(n, t, Arc::new(fd_crypto::SchnorrScheme::test_tiny()), 77)
    }

    #[test]
    fn vector_fd_shim_matches_run_vector() {
        let c = cluster(5, 1);
        let kd = c.setup_keydist();
        let values: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i, i + 10]).collect();
        let (old, _) = c.run_vector_fd(&kd, &values);
        let (new, _) = c.run_vector(&kd, &values);
        assert_eq!(old.to_json(), new.to_json());
    }

    #[test]
    fn shims_match_the_spec_path_byte_for_byte() {
        let c = cluster(6, 1);
        let kd = c.setup_keydist();
        let old = c.run_chain_fd(&kd, b"v".to_vec());
        let new = c.run(&RunSpec::new(crate::spec::Protocol::ChainFd, b"v".to_vec()));
        assert_eq!(old.to_json(), new.to_json());
    }
}
