//! Byzantine behaviours for validating the paper's theorems experimentally.
//!
//! The model places no restriction on faulty nodes (§2: "it may behave in an
//! arbitrary manner"), with exactly two structural limits enforced by the
//! network substrate, not by good will:
//!
//! * a faulty node cannot spoof the immediate-sender stamp (N2), and
//! * it cannot produce signatures for keys it does not hold (S1) — though
//!   faulty nodes may *share* secret keys with each other out of band.
//!
//! Each adversary here is an ordinary [`fd_simnet::Node`] automaton that replaces an
//! honest participant. Experiment T4 runs every adversary against every
//! protocol and asserts the paper's properties on the correct nodes'
//! outcomes: no scenario may ever produce silent disagreement.
//!
//! | adversary | attacks | paper reference |
//! |---|---|---|
//! | [`SilentNode`] | any protocol (crash fault) | — |
//! | [`NoiseNode`] | any protocol (garbage flood) | — |
//! | [`EquivocatingKeyDist`] | key distribution: different predicates to different peers | §3.2 (G3 failure) |
//! | [`SharedKeyKeyDist`] | two faulty nodes share one secret key | §3.2 (G1 caveat) |
//! | [`KeyThiefKeyDist`] | claims a correct node's predicate without the key | Theorem 2 (must fail) |
//! | [`WrongNameKeyDist`] | signs challenges with swapped names | Fig. 1 rule |
//! | [`ChainFdAdversary`] | chain FD: tamper/forge/drop/partial-dissemination/wrong names | §4, Theorem 4 |
//! | [`NonAuthAdversary`] | witness relay: lying/equivocating/two-faced | §5 baseline |
//! | [`CrashNode`] | any protocol (crash-stop wrapper around an honest automaton) | benign-fault hierarchy |
//! | [`OmissiveNode`] | any protocol (seeded send-omission wrapper) | benign-fault hierarchy |
//! | [`LaggardNode`] | any protocol (one-round timing-fault wrapper) | benign-fault hierarchy |

mod chainfd;
mod generic;
mod keydist;
mod nonauth;
mod spec;
mod wrappers;

pub use chainfd::{ChainFdAdversary, ChainMisbehavior};
pub use generic::{NoiseNode, SilentNode};
pub use keydist::{EquivocatingKeyDist, KeyThiefKeyDist, SharedKeyKeyDist, WrongNameKeyDist};
pub use nonauth::{NaMisbehavior, NonAuthAdversary};
pub use spec::{AdversaryKind, AdversarySpec, CustomSubstitution};
pub use wrappers::{CrashNode, LaggardNode, OmissiveNode};
