//! Byzantine participants in the chain FD protocol (paper Fig. 2).

use crate::chain::ChainMessage;
use crate::fd::{ChainFdParams, FdMsg};
use crate::keys::Keyring;
use fd_crypto::{SecretKey, SignatureScheme};
use fd_simnet::codec::{Decode, Encode};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::sync::Arc;

/// What a faulty chain participant does with the chain passing through it.
#[derive(Debug, Clone)]
pub enum ChainMisbehavior {
    /// Drop the chain (crash at this hop).
    Silent,
    /// Replace the body before extending — breaks the origin signature.
    TamperBody {
        /// Replacement value.
        new_body: Vec<u8>,
    },
    /// Extend with a wrong embedded assignee name (Theorem 4 trigger).
    WrongAssigneeName {
        /// The (incorrect) name to embed.
        claim: NodeId,
    },
    /// Discard the received chain and fabricate a fresh one, self-signing a
    /// body while claiming the designated sender as origin.
    ForgeOrigin {
        /// The forged value.
        value: Vec<u8>,
    },
    /// As `P_t`, disseminate only to some recipients (the canonical split
    /// attempt against naive protocols; chain FD turns it into discovery at
    /// the starved nodes).
    PartialDissemination {
        /// Recipients to starve.
        skip: Vec<NodeId>,
    },
    /// As the *sender* with `t = 0`, originate two different values and
    /// send one to low-numbered and one to high-numbered recipients.
    EquivocateSenderT0 {
        /// Value for peers below `split`.
        value_a: Vec<u8>,
        /// Value for peers at or above `split`.
        value_b: Vec<u8>,
        /// The dividing node id.
        split: NodeId,
    },
    /// Extend the chain signing with a *different* secret key (e.g. one
    /// whose predicate was equivocated during key distribution, or a key
    /// shared by another faulty node).
    SignWithKey {
        /// The substitute secret key.
        sk: SecretKey,
    },
    /// The two-faced relay: extend the received chain *honestly* to the
    /// designated next hop(s), but simultaneously inject a competing
    /// body-tampered chain to every other node. One story continues down
    /// the chain, another is whispered to the room — Theorem 4 turns the
    /// competing copies into discoveries (unexpected message or broken
    /// origin signature), never silent disagreement.
    TwoFaced {
        /// The competing body planted in the off-chain copies.
        alt_body: Vec<u8>,
    },
}

/// A faulty chain FD participant executing one [`ChainMisbehavior`].
///
/// It follows the honest timing (acts in its designated round) but deviates
/// in content, which is the interesting adversary class — timing deviations
/// are already covered by [`super::SilentNode`] and the `UnexpectedMessage`
/// checks.
pub struct ChainFdAdversary {
    me: NodeId,
    params: ChainFdParams,
    scheme: Arc<dyn SignatureScheme>,
    keyring: Keyring,
    behavior: ChainMisbehavior,
    /// `Some` when this adversary is the sender.
    value: Option<Vec<u8>>,
}

impl ChainFdAdversary {
    /// Create the faulty automaton for node `me`.
    pub fn new(
        me: NodeId,
        params: ChainFdParams,
        scheme: Arc<dyn SignatureScheme>,
        keyring: Keyring,
        behavior: ChainMisbehavior,
        value: Option<Vec<u8>>,
    ) -> Self {
        ChainFdAdversary {
            me,
            params,
            scheme,
            keyring,
            behavior,
            value,
        }
    }

    fn forward_targets(&self) -> Vec<NodeId> {
        let i = self.me.index();
        if i < self.params.t {
            vec![NodeId(i as u16 + 1)]
        } else {
            ((self.params.t + 1)..self.params.n)
                .map(|j| NodeId(j as u16))
                .collect()
        }
    }

    fn act_as_sender(&mut self, out: &mut Outbox) {
        match &self.behavior {
            ChainMisbehavior::Silent => {}
            ChainMisbehavior::EquivocateSenderT0 {
                value_a,
                value_b,
                split,
            } => {
                let mk = |v: &Vec<u8>| {
                    ChainMessage::originate(
                        self.scheme.as_ref(),
                        &self.keyring.sk,
                        self.me,
                        v.clone(),
                    )
                    .expect("keyring well-formed")
                };
                let (a, b) = (mk(value_a), mk(value_b));
                for j in 1..self.params.n {
                    let peer = NodeId(j as u16);
                    let chain = if peer < *split { a.clone() } else { b.clone() };
                    out.send(peer, FdMsg { chain }.encode_to_vec());
                }
            }
            _ => {
                // Other behaviours degenerate to honest origination when
                // placed at the sender.
                let v = self.value.clone().unwrap_or_else(|| b"?".to_vec());
                let chain =
                    ChainMessage::originate(self.scheme.as_ref(), &self.keyring.sk, self.me, v)
                        .expect("keyring well-formed");
                let payload = FdMsg { chain }.encode_to_vec();
                if self.params.t == 0 {
                    for j in 1..self.params.n {
                        out.send(NodeId(j as u16), payload.clone());
                    }
                } else {
                    out.send(NodeId(1), payload);
                }
            }
        }
    }

    fn act_as_relay(&mut self, env: &Envelope, out: &mut Outbox) {
        let Ok(msg) = FdMsg::decode_exact(&env.payload) else {
            return;
        };
        let received = msg.chain;
        let honest_assignee = env.from;

        let extended = match &self.behavior {
            ChainMisbehavior::Silent => return,
            ChainMisbehavior::TamperBody { new_body } => {
                let mut tampered = received;
                tampered.body = new_body.clone();
                tampered
                    .extend(self.scheme.as_ref(), &self.keyring.sk, honest_assignee)
                    .expect("keyring well-formed")
            }
            ChainMisbehavior::WrongAssigneeName { claim } => received
                .extend(self.scheme.as_ref(), &self.keyring.sk, *claim)
                .expect("keyring well-formed"),
            ChainMisbehavior::ForgeOrigin { value } => {
                let forged = ChainMessage::originate(
                    self.scheme.as_ref(),
                    &self.keyring.sk,
                    self.params.sender,
                    value.clone(),
                )
                .expect("keyring well-formed");
                // Re-build the expected number of layers by self-signing.
                let mut chain = forged;
                for k in 1..=self.me.index() - 1 {
                    chain = chain
                        .extend(self.scheme.as_ref(), &self.keyring.sk, NodeId(k as u16 - 1))
                        .expect("keyring well-formed");
                }
                chain
                    .extend(self.scheme.as_ref(), &self.keyring.sk, honest_assignee)
                    .expect("keyring well-formed")
            }
            ChainMisbehavior::SignWithKey { sk } => received
                .extend(self.scheme.as_ref(), sk, honest_assignee)
                .expect("substitute key well-formed"),
            ChainMisbehavior::PartialDissemination { skip } => {
                let extended = received
                    .extend(self.scheme.as_ref(), &self.keyring.sk, honest_assignee)
                    .expect("keyring well-formed");
                let payload = FdMsg { chain: extended }.encode_to_vec();
                for target in self.forward_targets() {
                    if !skip.contains(&target) {
                        out.send(target, payload.clone());
                    }
                }
                return;
            }
            ChainMisbehavior::EquivocateSenderT0 { .. } => {
                // Only meaningful at the sender; act honestly here.
                received
                    .extend(self.scheme.as_ref(), &self.keyring.sk, honest_assignee)
                    .expect("keyring well-formed")
            }
            ChainMisbehavior::TwoFaced { alt_body } => {
                let honest = received
                    .clone()
                    .extend(self.scheme.as_ref(), &self.keyring.sk, honest_assignee)
                    .expect("keyring well-formed");
                let payload = FdMsg { chain: honest }.encode_to_vec();
                let mut tampered = received;
                tampered.body = alt_body.clone();
                let tampered = tampered
                    .extend(self.scheme.as_ref(), &self.keyring.sk, honest_assignee)
                    .expect("keyring well-formed");
                let competing = FdMsg { chain: tampered }.encode_to_vec();
                let designated = self.forward_targets();
                if designated.len() > 1 {
                    // As P_t, equivocate within the dissemination set:
                    // the true chain to the first half, the competing
                    // body to the rest.
                    let mid = designated.len() / 2;
                    for target in &designated[..mid] {
                        out.send(*target, payload.clone());
                    }
                    for target in &designated[mid..] {
                        out.send(*target, competing.clone());
                    }
                } else {
                    // As an inner relay, play along on the chain and
                    // whisper the competing chain to every off-chain node.
                    for target in &designated {
                        out.send(*target, payload.clone());
                    }
                    for j in 0..self.params.n {
                        let peer = NodeId(j as u16);
                        if peer != self.me
                            && peer != self.params.sender
                            && !designated.contains(&peer)
                        {
                            out.send(peer, competing.clone());
                        }
                    }
                }
                return;
            }
        };
        let payload = FdMsg { chain: extended }.encode_to_vec();
        for target in self.forward_targets() {
            out.send(target, payload.clone());
        }
    }
}

impl Node for ChainFdAdversary {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.me == self.params.sender {
            if round == 0 {
                self.act_as_sender(out);
            }
            return;
        }
        // A relay acts in its chain round.
        let my_round = self.me.index() as u32;
        if round == my_round && self.me.index() <= self.params.t {
            if let Some(env) = inbox.first() {
                let env = env.clone();
                self.act_as_relay(&env, out);
            }
        }
    }

    fn is_done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for ChainFdAdversary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChainFdAdversary")
            .field("me", &self.me)
            .field("behavior", &self.behavior)
            .finish()
    }
}
