//! Byzantine participants in the non-authenticated witness-relay protocol.
//!
//! Without signatures the adversary can *lie freely* about values — the
//! protocol survives only through witness redundancy, which is exactly why
//! it costs `O(n·t)` messages (the comparison the paper draws in §5).

use crate::fd::{NaMsg, NonAuthParams};
use fd_simnet::codec::{Decode, Encode};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;

/// What a faulty witness-relay participant does.
#[derive(Debug, Clone)]
pub enum NaMisbehavior {
    /// Crash: send nothing (as sender or witness).
    Silent,
    /// As the sender, tell low-numbered nodes one value and the rest
    /// another.
    EquivocateSender {
        /// Value for peers below `split`.
        value_a: Vec<u8>,
        /// Value for peers at or above `split`.
        value_b: Vec<u8>,
        /// Dividing node id.
        split: NodeId,
    },
    /// As a witness, relay a fixed lie to everyone.
    LieRelay {
        /// The lie.
        value: Vec<u8>,
    },
    /// As a witness, relay the true value to low-numbered nodes and a lie
    /// to the rest.
    TwoFacedRelay {
        /// The lie sent to peers at or above `split`.
        lie: Vec<u8>,
        /// Dividing node id.
        split: NodeId,
    },
}

/// A faulty participant of the witness-relay protocol.
pub struct NonAuthAdversary {
    me: NodeId,
    params: NonAuthParams,
    behavior: NaMisbehavior,
    /// `Some` when this adversary is the sender.
    value: Option<Vec<u8>>,
    /// What the sender (or network) delivered to us in round 1.
    received: Option<Vec<u8>>,
}

impl NonAuthAdversary {
    /// Create the faulty automaton for node `me`.
    pub fn new(
        me: NodeId,
        params: NonAuthParams,
        behavior: NaMisbehavior,
        value: Option<Vec<u8>>,
    ) -> Self {
        NonAuthAdversary {
            me,
            params,
            behavior,
            value,
            received: None,
        }
    }
}

impl Node for NonAuthAdversary {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        match round {
            0 if self.me == self.params.sender => match &self.behavior {
                NaMisbehavior::Silent => {}
                NaMisbehavior::EquivocateSender {
                    value_a,
                    value_b,
                    split,
                } => {
                    for peer in NodeId::all(self.params.n) {
                        if peer == self.me {
                            continue;
                        }
                        let v = if peer < *split { value_a } else { value_b };
                        out.send(peer, NaMsg::Direct { value: v.clone() }.encode_to_vec());
                    }
                }
                _ => {
                    let v = self.value.clone().unwrap_or_default();
                    out.broadcast(
                        self.params.n,
                        self.me,
                        NaMsg::Direct { value: v }.encode_to_vec(),
                    );
                }
            },
            1 => {
                for env in inbox {
                    if let Ok(NaMsg::Direct { value }) = NaMsg::decode_exact(&env.payload) {
                        self.received = Some(value);
                    }
                }
                if self.params.is_witness(self.me) {
                    match &self.behavior {
                        NaMisbehavior::Silent => {}
                        NaMisbehavior::LieRelay { value } => {
                            out.broadcast(
                                self.params.n,
                                self.me,
                                NaMsg::Relay {
                                    value: Some(value.clone()),
                                }
                                .encode_to_vec(),
                            );
                        }
                        NaMisbehavior::TwoFacedRelay { lie, split } => {
                            for peer in NodeId::all(self.params.n) {
                                if peer == self.me {
                                    continue;
                                }
                                let v = if peer < *split {
                                    self.received.clone()
                                } else {
                                    Some(lie.clone())
                                };
                                out.send(peer, NaMsg::Relay { value: v }.encode_to_vec());
                            }
                        }
                        NaMisbehavior::EquivocateSender { .. } => {
                            // Witness role with a sender-only behaviour:
                            // relay honestly.
                            out.broadcast(
                                self.params.n,
                                self.me,
                                NaMsg::Relay {
                                    value: self.received.clone(),
                                }
                                .encode_to_vec(),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for NonAuthAdversary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NonAuthAdversary")
            .field("me", &self.me)
            .field("behavior", &self.behavior)
            .finish()
    }
}
