//! Declarative adversary specifications — *data*, not closures.
//!
//! A [`RunSpec`](crate::spec::RunSpec) carries an [`AdversarySpec`]: a
//! plain value describing which nodes are corrupt and how they misbehave.
//! The spec is turned into concrete byzantine automata only at execution
//! time, inside [`Cluster::run`](crate::runner::Cluster::run), so callers
//! never hand-thread `&mut dyn FnMut` substitution closures across crate
//! boundaries. The closure style survives as [`AdversarySpec::Custom`] —
//! an escape hatch for tests that inject bespoke automata.
//!
//! [`AdversaryKind`] is the catalogue of scripted behaviours shared by the
//! sweep matrix, the scheduler search, and the `lafd` CLI (`--adversary
//! KIND[:NODES]`).

use crate::adversary::{ChainFdAdversary, ChainMisbehavior, CrashNode, SilentNode};
use crate::fd::{ChainFdNode, ChainFdParams};
use crate::runner::{Cluster, KeyDistReport};
use crate::spec::Protocol;
use fd_simnet::{Node, NodeId};
use std::fmt;
use std::sync::Arc;

/// Byzantine behaviour injected at a corrupt node (by default the first
/// chain relay `P_1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AdversaryKind {
    /// All nodes honest (the failure-free baseline every formula is
    /// checked against).
    None,
    /// The corrupt node never sends anything.
    SilentRelay,
    /// The corrupt node runs the honest automaton but crashes entering
    /// round 1 (chain FD only — the wrapper needs the honest inner
    /// automaton).
    CrashRelay,
    /// The corrupt relay extends the chain with a tampered body (chain FD
    /// only).
    TamperBody,
    /// The corrupt relay forges a fresh origin message (chain FD only).
    ForgeOrigin,
    /// The corrupt relay embeds a wrong assignee name (chain FD only).
    WrongAssignee,
    /// The corrupt relay is two-faced: it extends the chain honestly to
    /// its designated targets *and* injects a competing body-tampered
    /// chain to every other node (chain FD only).
    Equivocate,
}

impl AdversaryKind {
    /// Every adversary kind, in canonical order.
    pub const ALL: [AdversaryKind; 7] = [
        AdversaryKind::None,
        AdversaryKind::SilentRelay,
        AdversaryKind::CrashRelay,
        AdversaryKind::TamperBody,
        AdversaryKind::ForgeOrigin,
        AdversaryKind::WrongAssignee,
        AdversaryKind::Equivocate,
    ];

    /// Stable machine-readable name (used in reports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::None => "none",
            AdversaryKind::SilentRelay => "silent",
            AdversaryKind::CrashRelay => "crash",
            AdversaryKind::TamperBody => "tamper",
            AdversaryKind::ForgeOrigin => "forge",
            AdversaryKind::WrongAssignee => "wrongname",
            AdversaryKind::Equivocate => "equivocate",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Result<AdversaryKind, String> {
        Ok(match name {
            "none" | "honest" => AdversaryKind::None,
            "silent" => AdversaryKind::SilentRelay,
            "crash" => AdversaryKind::CrashRelay,
            "tamper" => AdversaryKind::TamperBody,
            "forge" => AdversaryKind::ForgeOrigin,
            "wrongname" | "wrong_assignee" => AdversaryKind::WrongAssignee,
            "equivocate" | "twofaced" => AdversaryKind::Equivocate,
            other => {
                return Err(format!(
                    "unknown adversary {other} \
                     (none|silent|crash|tamper|forge|wrongname|equivocate)"
                ))
            }
        })
    }

    /// Whether this adversary can be injected into the given protocol.
    ///
    /// The chain-specific misbehaviours (and the crash wrapper, which needs
    /// the honest chain automaton) only speak the chain-FD wire format; the
    /// silent node speaks every protocol by saying nothing.
    pub fn applies_to(self, protocol: Protocol) -> bool {
        match self {
            AdversaryKind::None => true,
            AdversaryKind::SilentRelay => true,
            AdversaryKind::CrashRelay
            | AdversaryKind::TamperBody
            | AdversaryKind::ForgeOrigin
            | AdversaryKind::WrongAssignee
            | AdversaryKind::Equivocate => protocol == Protocol::ChainFd,
        }
    }
}

impl fmt::Display for AdversaryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A test-only substitution closure: maps a node id to the byzantine
/// automaton that replaces it, or `None` to keep the honest one. Shared
/// (`Arc` + `Fn`) so a [`RunSpec`](crate::spec::RunSpec) stays `Clone` and
/// `Send` — which is what lets search episodes fan out across threads.
pub type CustomSubstitution = Arc<dyn Fn(NodeId) -> Option<Box<dyn Node>> + Send + Sync>;

/// Which nodes are corrupt and how they misbehave — the declarative
/// adversary a [`RunSpec`](crate::spec::RunSpec) carries.
///
/// ```
/// use fd_core::adversary::{AdversaryKind, AdversarySpec};
/// use fd_simnet::NodeId;
///
/// let relay_silent = AdversarySpec::scripted(AdversaryKind::SilentRelay);
/// assert_eq!(relay_silent.corrupt_set(), vec![NodeId(1)]);
/// assert_eq!(AdversarySpec::parse("tamper:2").unwrap().name(), "tamper:2");
/// assert!(AdversarySpec::parse("none").unwrap().is_honest());
/// ```
#[derive(Clone, Default)]
pub enum AdversarySpec {
    /// Everyone runs the honest automaton.
    #[default]
    Honest,
    /// A scripted [`AdversaryKind`] replacing every node in `corrupt`.
    Scripted {
        /// The behaviour of the corrupt nodes.
        kind: AdversaryKind,
        /// The corrupt set (must be non-empty).
        corrupt: Vec<NodeId>,
    },
    /// An arbitrary substitution closure — the escape hatch for tests.
    Custom(CustomSubstitution),
}

impl AdversarySpec {
    /// The default corrupt node of a scripted adversary: the first chain
    /// relay `P_1`, the node every kind in [`AdversaryKind`] targets in
    /// the sweep matrix.
    pub const DEFAULT_RELAY: NodeId = NodeId(1);

    /// A scripted adversary at the default relay ([`Self::DEFAULT_RELAY`]).
    /// [`AdversaryKind::None`] yields [`AdversarySpec::Honest`].
    pub fn scripted(kind: AdversaryKind) -> Self {
        Self::scripted_at(kind, vec![Self::DEFAULT_RELAY])
    }

    /// A scripted adversary at an explicit corrupt set.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not [`AdversaryKind::None`] and `corrupt` is
    /// empty — a scripted adversary with nobody to corrupt is a spec bug.
    pub fn scripted_at(kind: AdversaryKind, corrupt: Vec<NodeId>) -> Self {
        if kind == AdversaryKind::None {
            return AdversarySpec::Honest;
        }
        assert!(
            !corrupt.is_empty(),
            "scripted adversary needs corrupt nodes"
        );
        AdversarySpec::Scripted { kind, corrupt }
    }

    /// A custom substitution closure (tests only — scripted kinds keep
    /// reports comparable across layers).
    pub fn custom(f: impl Fn(NodeId) -> Option<Box<dyn Node>> + Send + Sync + 'static) -> Self {
        AdversarySpec::Custom(Arc::new(f))
    }

    /// Parse `KIND[:NODES]` where `NODES` is a comma-separated list of
    /// node indices (default: the first chain relay), e.g. `silent`,
    /// `tamper:1`, `silent:2,4`.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let (kind_raw, nodes_raw) = match raw.split_once(':') {
            Some((k, n)) => (k, Some(n)),
            None => (raw, None),
        };
        let kind = AdversaryKind::parse(kind_raw)?;
        let corrupt = match nodes_raw {
            None => vec![Self::DEFAULT_RELAY],
            Some(list) => {
                if kind == AdversaryKind::None {
                    return Err("adversary none takes no node list".to_string());
                }
                let nodes: Result<Vec<NodeId>, String> = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.trim()
                            .parse::<u16>()
                            .map(NodeId)
                            .map_err(|e| format!("adversary node {s}: {e}"))
                    })
                    .collect();
                let nodes = nodes?;
                if nodes.is_empty() {
                    return Err(format!("adversary {kind} needs at least one node"));
                }
                nodes
            }
        };
        Ok(Self::scripted_at(kind, corrupt))
    }

    /// `true` iff no node is replaced.
    pub fn is_honest(&self) -> bool {
        matches!(self, AdversarySpec::Honest)
    }

    /// The scripted kind, if any ([`AdversaryKind::None`] for
    /// [`AdversarySpec::Honest`], `None` for custom closures).
    pub fn kind(&self) -> Option<AdversaryKind> {
        match self {
            AdversarySpec::Honest => Some(AdversaryKind::None),
            AdversarySpec::Scripted { kind, .. } => Some(*kind),
            AdversarySpec::Custom(_) => None,
        }
    }

    /// The declared corrupt set (empty for honest and custom specs — a
    /// custom closure decides per node at execution time).
    pub fn corrupt_set(&self) -> Vec<NodeId> {
        match self {
            AdversarySpec::Scripted { corrupt, .. } => corrupt.clone(),
            _ => Vec::new(),
        }
    }

    /// Whether this spec can be injected into the given protocol.
    pub fn applies_to(&self, protocol: Protocol) -> bool {
        match self {
            AdversarySpec::Honest | AdversarySpec::Custom(_) => true,
            AdversarySpec::Scripted { kind, .. } => kind.applies_to(protocol),
        }
    }

    /// Stable display name: `none`, `custom`, or `KIND:NODES`.
    pub fn name(&self) -> String {
        match self {
            AdversarySpec::Honest => "none".to_string(),
            AdversarySpec::Custom(_) => "custom".to_string(),
            AdversarySpec::Scripted { kind, corrupt } => {
                let nodes: Vec<String> = corrupt.iter().map(|id| id.index().to_string()).collect();
                format!("{}:{}", kind, nodes.join(","))
            }
        }
    }

    /// Materialize the substitution closure for one run.
    ///
    /// Scripted kinds build the same automata the sweep engine has always
    /// injected (silent node, crash wrapper around the honest relay, chain
    /// tamper/forge/wrong-name/two-faced adversaries); the bodies they
    /// plant are fixed constants so reports stay byte-comparable across
    /// layers.
    ///
    /// # Panics
    ///
    /// The returned closure panics if [`AdversaryKind::CrashRelay`] is
    /// asked to wrap a node without a key store (`keydist` is `None`) —
    /// the crash wrapper runs the honest chain automaton, which needs its
    /// keys.
    pub fn substitution<'a>(
        &'a self,
        cluster: &'a Cluster,
        keydist: Option<&'a KeyDistReport>,
    ) -> Box<dyn FnMut(NodeId) -> Option<Box<dyn Node>> + 'a> {
        match self {
            AdversarySpec::Honest => Box::new(|_| None),
            AdversarySpec::Custom(f) => {
                let f = Arc::clone(f);
                Box::new(move |id| f(id))
            }
            AdversarySpec::Scripted { kind, corrupt } => {
                let kind = *kind;
                Box::new(move |id: NodeId| {
                    if !corrupt.contains(&id) {
                        return None;
                    }
                    Some(build_scripted(kind, id, cluster, keydist))
                })
            }
        }
    }
}

impl fmt::Debug for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AdversarySpec({})", self.name())
    }
}

impl PartialEq for AdversarySpec {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AdversarySpec::Honest, AdversarySpec::Honest) => true,
            (
                AdversarySpec::Scripted { kind, corrupt },
                AdversarySpec::Scripted {
                    kind: k2,
                    corrupt: c2,
                },
            ) => kind == k2 && corrupt == c2,
            // Closures have no usable identity; two customs only compare
            // equal when they are the same allocation.
            (AdversarySpec::Custom(a), AdversarySpec::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for AdversarySpec {}

/// Build the byzantine automaton for one corrupt node of a scripted kind.
fn build_scripted(
    kind: AdversaryKind,
    me: NodeId,
    cluster: &Cluster,
    keydist: Option<&KeyDistReport>,
) -> Box<dyn Node> {
    let params = || ChainFdParams::new(cluster.n, cluster.t);
    match kind {
        AdversaryKind::None => unreachable!("scripted_at maps None onto Honest"),
        AdversaryKind::SilentRelay => Box::new(SilentNode { me }),
        AdversaryKind::CrashRelay => {
            let honest = Box::new(ChainFdNode::new(
                me,
                params(),
                Arc::clone(&cluster.scheme),
                keydist.expect("crash wrapper needs keys").store(me).clone(),
                cluster.keyring(me),
                None,
            )) as Box<dyn Node>;
            Box::new(CrashNode::new(honest, 1, 0))
        }
        AdversaryKind::TamperBody
        | AdversaryKind::ForgeOrigin
        | AdversaryKind::WrongAssignee
        | AdversaryKind::Equivocate => {
            let misbehavior = match kind {
                AdversaryKind::TamperBody => ChainMisbehavior::TamperBody {
                    new_body: b"sweep-tampered".to_vec(),
                },
                AdversaryKind::ForgeOrigin => ChainMisbehavior::ForgeOrigin {
                    value: b"sweep-forged".to_vec(),
                },
                AdversaryKind::Equivocate => ChainMisbehavior::TwoFaced {
                    alt_body: b"spec-equivocated".to_vec(),
                },
                _ => ChainMisbehavior::WrongAssigneeName {
                    claim: NodeId((cluster.n - 1) as u16),
                },
            };
            Box::new(ChainFdAdversary::new(
                me,
                params(),
                Arc::clone(&cluster.scheme),
                cluster.keyring(me),
                misbehavior,
                None,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_kind_and_node_lists() {
        assert!(AdversarySpec::parse("none").unwrap().is_honest());
        assert!(AdversarySpec::parse("honest").unwrap().is_honest());
        let spec = AdversarySpec::parse("silent").unwrap();
        assert_eq!(spec.corrupt_set(), vec![AdversarySpec::DEFAULT_RELAY]);
        let spec = AdversarySpec::parse("equivocate:1").unwrap();
        assert_eq!(spec.kind(), Some(AdversaryKind::Equivocate));
        assert_eq!(spec.corrupt_set(), vec![NodeId(1)]);
        let spec = AdversarySpec::parse("silent:2,4").unwrap();
        assert_eq!(spec.corrupt_set(), vec![NodeId(2), NodeId(4)]);
        assert!(AdversarySpec::parse("nonsense").is_err());
        assert!(AdversarySpec::parse("silent:x").is_err());
        assert!(AdversarySpec::parse("none:1").is_err());
        assert!(AdversarySpec::parse("silent:").is_err());
    }

    #[test]
    fn kind_applicability_is_preserved() {
        for kind in AdversaryKind::ALL {
            let spec = AdversarySpec::scripted(kind);
            assert!(spec.applies_to(Protocol::ChainFd));
            assert_eq!(
                spec.applies_to(Protocol::DolevStrong),
                kind == AdversaryKind::None || kind == AdversaryKind::SilentRelay
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in AdversaryKind::ALL {
            assert_eq!(AdversaryKind::parse(kind.name()).unwrap(), kind);
            if kind != AdversaryKind::None {
                let spec = AdversarySpec::scripted_at(kind, vec![NodeId(3)]);
                assert_eq!(AdversarySpec::parse(&spec.name()).unwrap(), spec);
            }
        }
    }

    #[test]
    fn custom_specs_compare_by_identity() {
        let a = AdversarySpec::custom(|_| None);
        let b = AdversarySpec::custom(|_| None);
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
        assert_eq!(a.kind(), None);
        assert_eq!(a.name(), "custom");
    }
}
