//! Benign-fault wrappers: crash, omission, and timing faults.
//!
//! The paper's model is purely byzantine ("no assumptions about the type of
//! failures", §2), which subsumes the classical benign fault classes. These
//! wrappers make that subsumption executable: they wrap *any honest
//! automaton* and degrade its behaviour into one of the textbook fault
//! classes, so the test-suite can sweep the whole fault hierarchy
//! (crash ⊂ omission ⊂ timing ⊂ byzantine) against every protocol and
//! check that the failure-discovery properties hold at every level.
//!
//! * [`CrashNode`] — executes faithfully until a given round, then stops
//!   forever (optionally delivering only a prefix of its final round's
//!   messages, the classic "crash mid-broadcast").
//! * [`OmissiveNode`] — executes faithfully but drops each outgoing message
//!   with a seeded probability (send-omission faults).
//! * [`LaggardNode`] — executes faithfully but delivers every outgoing
//!   message one round late (a *node* timing fault: the network N1 is
//!   untouched, the node is just slow — in a synchronous system this is a
//!   fault, and protocols must either tolerate or discover it).

use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;

/// Tiny deterministic PRNG (SplitMix64) so omission patterns replay.
#[derive(Debug, Clone)]
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Crash-stop fault: behaves like `inner` until `crash_round`, where only
/// the first `deliver_prefix` queued messages leave; silent from then on.
pub struct CrashNode {
    inner: Box<dyn Node>,
    crash_round: u32,
    deliver_prefix: usize,
    crashed: bool,
}

impl CrashNode {
    /// Wrap `inner`; it crashes in `crash_round` after emitting at most
    /// `deliver_prefix` of that round's messages.
    pub fn new(inner: Box<dyn Node>, crash_round: u32, deliver_prefix: usize) -> Self {
        CrashNode {
            inner,
            crash_round,
            deliver_prefix,
            crashed: false,
        }
    }
}

impl Node for CrashNode {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.crashed || round > self.crash_round {
            self.crashed = true;
            return;
        }
        let mut staged = Outbox::new();
        self.inner.on_round(round, inbox, &mut staged);
        let msgs = staged.into_messages();
        let keep = if round == self.crash_round {
            self.crashed = true;
            self.deliver_prefix.min(msgs.len())
        } else {
            msgs.len()
        };
        for (to, payload) in msgs.into_iter().take(keep) {
            out.send(to, payload);
        }
    }

    fn is_done(&self) -> bool {
        self.crashed || self.inner.is_done()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for CrashNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CrashNode")
            .field("id", &self.id())
            .field("crash_round", &self.crash_round)
            .field("crashed", &self.crashed)
            .finish()
    }
}

/// Send-omission fault: behaves like `inner` but drops each outgoing
/// message independently with probability `drop_permille / 1000`.
pub struct OmissiveNode {
    inner: Box<dyn Node>,
    rng: Mix,
    drop_permille: u64,
}

impl OmissiveNode {
    /// Wrap `inner` with seeded per-message send-omission.
    ///
    /// # Panics
    ///
    /// Panics if `drop_permille > 1000`.
    pub fn new(inner: Box<dyn Node>, seed: u64, drop_permille: u64) -> Self {
        assert!(drop_permille <= 1000, "permille is at most 1000");
        OmissiveNode {
            inner,
            rng: Mix(seed ^ 0x4f4d_4953_5349_4f4e), // "OMISSION" salt
            drop_permille,
        }
    }
}

impl Node for OmissiveNode {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        let mut staged = Outbox::new();
        self.inner.on_round(round, inbox, &mut staged);
        for (to, payload) in staged.into_messages() {
            if self.rng.next() % 1000 >= self.drop_permille {
                out.send(to, payload);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for OmissiveNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OmissiveNode")
            .field("id", &self.id())
            .field("drop_permille", &self.drop_permille)
            .finish()
    }
}

/// Timing fault: behaves like `inner` but every outgoing message leaves one
/// round late.
pub struct LaggardNode {
    inner: Box<dyn Node>,
    held: Vec<(NodeId, fd_simnet::Payload)>,
}

impl LaggardNode {
    /// Wrap `inner`; all its sends are deferred by one round.
    pub fn new(inner: Box<dyn Node>) -> Self {
        LaggardNode {
            inner,
            held: Vec::new(),
        }
    }
}

impl Node for LaggardNode {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        for (to, payload) in self.held.drain(..) {
            out.send(to, payload);
        }
        let mut staged = Outbox::new();
        self.inner.on_round(round, inbox, &mut staged);
        self.held = staged.into_messages();
    }

    fn is_done(&self) -> bool {
        self.held.is_empty() && self.inner.is_done()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for LaggardNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LaggardNode")
            .field("id", &self.id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{ChainFdNode, ChainFdParams};
    use crate::keys::{KeyStore, Keyring};
    use crate::outcome::Outcome;
    use fd_crypto::SignatureScheme;
    use fd_simnet::SyncNetwork;
    use std::sync::Arc;

    fn chain_fd_nodes(
        n: usize,
        t: usize,
        wrap: impl Fn(usize, Box<dyn Node>) -> Box<dyn Node>,
    ) -> (Vec<Box<dyn Node>>, ChainFdParams) {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(fd_crypto::SchnorrScheme::test_tiny());
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(scheme.as_ref(), NodeId(i as u16), 41))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        let params = ChainFdParams::new(n, t);
        let nodes = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                let honest = Box::new(ChainFdNode::new(
                    me,
                    params.clone(),
                    Arc::clone(&scheme),
                    KeyStore::global(me, &pks),
                    rings[i].clone(),
                    (i == 0).then(|| b"v".to_vec()),
                )) as Box<dyn Node>;
                wrap(i, honest)
            })
            .collect();
        (nodes, params)
    }

    fn outcomes(net: SyncNetwork, faulty: usize) -> Vec<Outcome> {
        net.into_nodes()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != faulty)
            .filter_map(|(_, b)| {
                b.into_any()
                    .downcast::<ChainFdNode>()
                    .ok()
                    .map(|n| n.outcome().clone())
            })
            .collect()
    }

    #[test]
    fn crashed_relay_is_discovered_downstream() {
        // Chain P0 -> P1 -> P2 -> rest (t = 2). P1 crashes in its relay
        // round without sending: P2 discovers a missing message.
        let (n, t) = (6usize, 2usize);
        let (nodes, params) = chain_fd_nodes(n, t, |i, honest| {
            if i == 1 {
                Box::new(CrashNode::new(honest, 1, 0))
            } else {
                honest
            }
        });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(params.rounds());
        let outs = outcomes(net, 1);
        assert!(
            outs.iter().any(|o| o.is_discovered()),
            "someone must discover the crash: {outs:?}"
        );
        // F2: no two correct nodes decided differently.
        let decided: std::collections::BTreeSet<_> =
            outs.iter().filter_map(|o| o.decided()).collect();
        assert!(decided.len() <= 1);
    }

    #[test]
    fn crash_after_protocol_is_invisible() {
        // A node that crashes only after all its protocol obligations are
        // met leaves a failure-free view everywhere.
        let (n, t) = (5usize, 1usize);
        let (nodes, params) = chain_fd_nodes(n, t, |i, honest| {
            if i == 4 {
                // P4 is a mere receiver in ChainFd (t+1 = 2 chain hops);
                // crashing it in a late round changes nothing.
                Box::new(CrashNode::new(honest, params_rounds_hack(), 99))
            } else {
                honest
            }
        });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(params.rounds());
        for o in outcomes(net, 4) {
            assert_eq!(o, Outcome::Decided(b"v".to_vec()));
        }
    }

    fn params_rounds_hack() -> u32 {
        1000
    }

    #[test]
    fn partial_crash_delivers_prefix_only() {
        // The disseminator P_t crashes halfway through its broadcast: the
        // skipped recipients discover, the reached ones decide.
        let (n, t) = (6usize, 1usize);
        // Chain is P0 -> P1; P1 disseminates to P2..P5 (4 messages).
        let (nodes, params) = chain_fd_nodes(n, t, |i, honest| {
            if i == 1 {
                Box::new(CrashNode::new(honest, 1, 2))
            } else {
                honest
            }
        });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(params.rounds());
        let outs = outcomes(net, 1);
        let discovered = outs.iter().filter(|o| o.is_discovered()).count();
        let decided = outs
            .iter()
            .filter(|o| o.decided() == Some(&b"v"[..]))
            .count();
        assert_eq!(discovered, 2, "{outs:?}");
        // P0 (sender) plus the two reached recipients decide.
        assert_eq!(decided, 3, "{outs:?}");
    }

    #[test]
    fn omissive_node_never_causes_silent_disagreement() {
        // Sweep seeds and drop rates; property F2 must hold in every run.
        let (n, t) = (6usize, 2usize);
        for seed in 0..20u64 {
            for drop in [100u64, 500, 900] {
                let (nodes, params) = chain_fd_nodes(n, t, |i, honest| {
                    if i == 1 {
                        Box::new(OmissiveNode::new(honest, seed, drop))
                    } else {
                        honest
                    }
                });
                let mut net = SyncNetwork::new(nodes);
                net.run_until_done(params.rounds());
                let outs = outcomes(net, 1);
                let decided: std::collections::BTreeSet<_> =
                    outs.iter().filter_map(|o| o.decided()).collect();
                assert!(
                    decided.len() <= 1,
                    "silent disagreement seed={seed} drop={drop}: {outs:?}"
                );
            }
        }
    }

    #[test]
    fn omission_rate_zero_is_faithful() {
        let (n, t) = (5usize, 1usize);
        let (nodes, params) = chain_fd_nodes(n, t, |i, honest| {
            if i == 1 {
                Box::new(OmissiveNode::new(honest, 7, 0))
            } else {
                honest
            }
        });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(params.rounds());
        for o in outcomes(net, 1) {
            assert_eq!(o, Outcome::Decided(b"v".to_vec()));
        }
    }

    #[test]
    fn omission_rate_full_is_crash_from_start() {
        let (n, t) = (5usize, 1usize);
        let (nodes, params) = chain_fd_nodes(n, t, |i, honest| {
            if i == 1 {
                Box::new(OmissiveNode::new(honest, 7, 1000))
            } else {
                honest
            }
        });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(params.rounds());
        let outs = outcomes(net, 1);
        assert!(outs.iter().any(|o| o.is_discovered()), "{outs:?}");
    }

    #[test]
    fn laggard_relay_is_discovered() {
        // The chain protocol expects the relay in a specific round; a
        // one-round-late relay is a view no failure-free run contains.
        let (n, t) = (6usize, 2usize);
        let (nodes, params) = chain_fd_nodes(n, t, |i, honest| {
            if i == 1 {
                Box::new(LaggardNode::new(honest))
            } else {
                honest
            }
        });
        let mut net = SyncNetwork::new(nodes);
        // One extra round so the laggard's held messages drain.
        net.run_until_done(params.rounds() + 1);
        let outs = outcomes(net, 1);
        assert!(
            outs.iter().any(|o| o.is_discovered()),
            "late relay must be discovered: {outs:?}"
        );
        let decided: std::collections::BTreeSet<_> =
            outs.iter().filter_map(|o| o.decided()).collect();
        assert!(decided.len() <= 1);
    }

    #[test]
    fn wrappers_preserve_identity() {
        let (nodes, _) = chain_fd_nodes(4, 1, |_, h| h);
        let id = nodes[2].id();
        let wrapped = CrashNode::new(
            {
                let (mut nodes, _) = chain_fd_nodes(4, 1, |_, h| h);
                nodes.remove(2)
            },
            3,
            0,
        );
        assert_eq!(wrapped.id(), id);
        assert!(format!("{wrapped:?}").contains("crash_round"));
    }
}
