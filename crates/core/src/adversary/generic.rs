//! Protocol-agnostic byzantine behaviours.

use fd_crypto::ChaChaDrbg;
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;

/// A crashed node: participates in nothing.
///
/// The weakest fault; every protocol must either tolerate it or discover it.
#[derive(Debug)]
pub struct SilentNode {
    /// Node identity.
    pub me: NodeId,
}

impl Node for SilentNode {
    fn id(&self) -> NodeId {
        self.me
    }
    fn on_round(&mut self, _round: u32, _inbox: &[Envelope], _out: &mut Outbox) {}
    fn is_done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A node that floods every peer with random garbage each round.
///
/// Exercises every decode/verify path of the honest automata: anything
/// other than clean rejection or discovery is a bug.
pub struct NoiseNode {
    me: NodeId,
    n: usize,
    rng: ChaChaDrbg,
    messages_per_round: usize,
    max_len: usize,
    rounds: u32,
}

impl NoiseNode {
    /// Flood `messages_per_round` random payloads (≤ `max_len` bytes) to
    /// random peers in each of the first `rounds` rounds.
    pub fn new(
        me: NodeId,
        n: usize,
        seed: u64,
        messages_per_round: usize,
        max_len: usize,
        rounds: u32,
    ) -> Self {
        NoiseNode {
            me,
            n,
            rng: ChaChaDrbg::from_seed(seed ^ 0x4e4f_4953_4500_0000),
            messages_per_round,
            max_len,
            rounds,
        }
    }
}

impl Node for NoiseNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
        if round >= self.rounds || self.n < 2 {
            return;
        }
        for _ in 0..self.messages_per_round {
            let to = loop {
                let candidate = NodeId((self.rng.next_u64() % self.n as u64) as u16);
                if candidate != self.me {
                    break candidate;
                }
            };
            let len = (self.rng.next_u64() as usize) % (self.max_len + 1);
            let mut payload = vec![0u8; len];
            self.rng.fill_bytes(&mut payload);
            out.send(to, payload);
        }
    }

    fn is_done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for NoiseNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NoiseNode").field("me", &self.me).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_node_sends_nothing() {
        let mut node = SilentNode { me: NodeId(1) };
        let mut out = Outbox::new();
        node.on_round(0, &[], &mut out);
        assert!(out.is_empty());
        assert!(node.is_done());
    }

    #[test]
    fn noise_node_floods_deterministically() {
        let collect = |seed| {
            let mut node = NoiseNode::new(NodeId(0), 4, seed, 3, 16, 2);
            let mut all = Vec::new();
            for r in 0..3 {
                let mut out = Outbox::new();
                node.on_round(r, &[], &mut out);
                all.push(out.into_messages());
            }
            all
        };
        let a = collect(7);
        let b = collect(7);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), 3);
        assert_eq!(a[1].len(), 3);
        assert!(a[2].is_empty(), "stops after configured rounds");
        // Never sends to itself.
        for round in &a {
            for (to, _) in round {
                assert_ne!(*to, NodeId(0));
            }
        }
    }
}
