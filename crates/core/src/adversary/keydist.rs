//! Byzantine participants in the key distribution protocol (paper §3).

use crate::localauth::{challenge_bytes, KdMsg};
use fd_crypto::{PublicKey, SecretKey, SignatureScheme};
use fd_simnet::codec::{Decode, Encode};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::sync::Arc;

/// Respond honestly to challenges using `sk` (helper shared by the
/// adversaries — most attacks still require *holding* the announced key,
/// which is the whole point of the protocol).
fn respond_to_challenges(
    me: NodeId,
    scheme: &dyn SignatureScheme,
    sk_for: impl Fn(NodeId) -> Option<SecretKey>,
    inbox: &[Envelope],
    out: &mut Outbox,
) {
    for env in inbox {
        let Ok(KdMsg::Challenge {
            challenger,
            challenged,
            nonce,
        }) = KdMsg::decode_exact(&env.payload)
        else {
            continue;
        };
        if challenged != me || challenger != env.from {
            continue;
        }
        let Some(sk) = sk_for(env.from) else { continue };
        let bytes = challenge_bytes(challenger, challenged, nonce);
        if let Ok(sig) = scheme.sign(&sk, &bytes) {
            out.send(
                env.from,
                KdMsg::Response {
                    challenger,
                    challenged,
                    nonce,
                    sig: sig.0,
                }
                .encode_to_vec(),
            );
        }
    }
}

/// The G3 attack (paper §3.2): announce predicate A to low-numbered peers
/// and predicate B to the rest, answering each peer's challenge with the
/// matching secret key. Both halves accept — *different* — keys for this
/// node, so assignments of its later signatures diverge. Theorem 4
/// guarantees the divergence is discovered during chain verification, never
/// silent.
pub struct EquivocatingKeyDist {
    me: NodeId,
    n: usize,
    scheme: Arc<dyn SignatureScheme>,
    key_a: (SecretKey, PublicKey),
    key_b: (SecretKey, PublicKey),
    /// Peers with id < split get predicate A.
    split: NodeId,
}

impl EquivocatingKeyDist {
    /// Create with two fresh keypairs derived from `seed`.
    pub fn new(
        me: NodeId,
        n: usize,
        scheme: Arc<dyn SignatureScheme>,
        seed: u64,
        split: NodeId,
    ) -> Self {
        let key_a = scheme.keypair_from_seed(seed ^ 0xAAAA_0001);
        let key_b = scheme.keypair_from_seed(seed ^ 0xBBBB_0002);
        EquivocatingKeyDist {
            me,
            n,
            scheme,
            key_a,
            key_b,
            split,
        }
    }

    /// The secret key matching what `peer` was told.
    pub fn key_for(&self, peer: NodeId) -> &(SecretKey, PublicKey) {
        if peer < self.split {
            &self.key_a
        } else {
            &self.key_b
        }
    }

    /// Both announced public keys `(A, B)`.
    pub fn announced(&self) -> (&PublicKey, &PublicKey) {
        (&self.key_a.1, &self.key_b.1)
    }
}

impl Node for EquivocatingKeyDist {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        match round {
            0 => {
                for peer in NodeId::all(self.n) {
                    if peer == self.me {
                        continue;
                    }
                    let pk = &self.key_for(peer).1;
                    out.send(peer, KdMsg::Announce { pk: pk.0.clone() }.encode_to_vec());
                }
            }
            2 => {
                let me = self.me;
                let key_a = self.key_a.0.clone();
                let key_b = self.key_b.0.clone();
                let split = self.split;
                respond_to_challenges(
                    me,
                    self.scheme.as_ref(),
                    |peer| {
                        Some(if peer < split {
                            key_a.clone()
                        } else {
                            key_b.clone()
                        })
                    },
                    inbox,
                    out,
                );
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for EquivocatingKeyDist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EquivocatingKeyDist")
            .field("me", &self.me)
            .field("split", &self.split)
            .finish()
    }
}

/// Two cooperating faulty nodes that share one secret key (paper §3.2's G1
/// caveat): signatures by either are assigned to whichever announced the
/// key — but *consistently* by all correct nodes.
pub struct SharedKeyKeyDist {
    me: NodeId,
    n: usize,
    scheme: Arc<dyn SignatureScheme>,
    shared_sk: SecretKey,
    shared_pk: PublicKey,
}

impl SharedKeyKeyDist {
    /// Create a member of the sharing clique; all members pass the same
    /// `shared_seed`.
    pub fn new(me: NodeId, n: usize, scheme: Arc<dyn SignatureScheme>, shared_seed: u64) -> Self {
        let (shared_sk, shared_pk) = scheme.keypair_from_seed(shared_seed ^ 0x5AAE_D001);
        SharedKeyKeyDist {
            me,
            n,
            scheme,
            shared_sk,
            shared_pk,
        }
    }

    /// The shared key material (for the follow-up FD-phase adversary).
    pub fn shared(&self) -> (SecretKey, PublicKey) {
        (self.shared_sk.clone(), self.shared_pk.clone())
    }
}

impl Node for SharedKeyKeyDist {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        match round {
            0 => {
                let msg = KdMsg::Announce {
                    pk: self.shared_pk.0.clone(),
                }
                .encode_to_vec();
                out.broadcast(self.n, self.me, msg);
            }
            2 => {
                let sk = self.shared_sk.clone();
                respond_to_challenges(
                    self.me,
                    self.scheme.as_ref(),
                    |_| Some(sk.clone()),
                    inbox,
                    out,
                );
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for SharedKeyKeyDist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SharedKeyKeyDist")
            .field("me", &self.me)
            .finish()
    }
}

/// Announces a *correct* node's public key without holding the secret key.
/// The challenge–response step makes this hopeless: the thief cannot sign,
/// so no correct node ever accepts the stolen predicate for the thief —
/// the guarantee at the heart of the distribution protocol ("no faulty node
/// can claim a public key of a correct node for itself").
pub struct KeyThiefKeyDist {
    me: NodeId,
    n: usize,
    victim_pk: PublicKey,
}

impl KeyThiefKeyDist {
    /// Create a thief claiming `victim_pk`.
    pub fn new(me: NodeId, n: usize, victim_pk: PublicKey) -> Self {
        KeyThiefKeyDist { me, n, victim_pk }
    }
}

impl Node for KeyThiefKeyDist {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        match round {
            0 => {
                let msg = KdMsg::Announce {
                    pk: self.victim_pk.0.clone(),
                }
                .encode_to_vec();
                out.broadcast(self.n, self.me, msg);
            }
            2 => {
                // Best effort: answer with garbage signatures.
                for env in inbox {
                    if let Ok(KdMsg::Challenge {
                        challenger,
                        challenged,
                        nonce,
                    }) = KdMsg::decode_exact(&env.payload)
                    {
                        out.send(
                            env.from,
                            KdMsg::Response {
                                challenger,
                                challenged,
                                nonce,
                                sig: vec![0xab; 12],
                            }
                            .encode_to_vec(),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for KeyThiefKeyDist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KeyThiefKeyDist")
            .field("me", &self.me)
            .finish()
    }
}

/// Holds its own key but signs challenge responses with the names swapped —
/// violating the Fig. 1 signing rule. No correct node accepts it.
pub struct WrongNameKeyDist {
    me: NodeId,
    n: usize,
    scheme: Arc<dyn SignatureScheme>,
    sk: SecretKey,
    pk: PublicKey,
}

impl WrongNameKeyDist {
    /// Create with a fresh keypair from `seed`.
    pub fn new(me: NodeId, n: usize, scheme: Arc<dyn SignatureScheme>, seed: u64) -> Self {
        let (sk, pk) = scheme.keypair_from_seed(seed ^ 0x3030_0003);
        WrongNameKeyDist {
            me,
            n,
            scheme,
            sk,
            pk,
        }
    }
}

impl Node for WrongNameKeyDist {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        match round {
            0 => {
                let msg = KdMsg::Announce {
                    pk: self.pk.0.clone(),
                }
                .encode_to_vec();
                out.broadcast(self.n, self.me, msg);
            }
            2 => {
                for env in inbox {
                    if let Ok(KdMsg::Challenge {
                        challenger,
                        challenged,
                        nonce,
                    }) = KdMsg::decode_exact(&env.payload)
                    {
                        // Swap the names in the signed bytes.
                        let bytes = challenge_bytes(challenged, challenger, nonce);
                        if let Ok(sig) = self.scheme.sign(&self.sk, &bytes) {
                            out.send(
                                env.from,
                                KdMsg::Response {
                                    challenger,
                                    challenged,
                                    nonce,
                                    sig: sig.0,
                                }
                                .encode_to_vec(),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        true
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for WrongNameKeyDist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WrongNameKeyDist")
            .field("me", &self.me)
            .finish()
    }
}
