//! Adversarial scheduler search over the event engine — the repo's
//! lightweight Jepsen/TLC analogue.
//!
//! The paper claims its failure-discovery guarantees against a *worst-case*
//! adversary, but a sweep ([`crate::sweep`]) only samples fixed latency
//! models: every row draws its delivery schedule from a seeded
//! distribution and nobody *searches* for the schedule that breaks
//! agreement. This module adds that search. Within the admissible envelope
//! of a [`LatencySpec`] (see [`LatencySpec::tick_bounds`]) it explores
//! per-message delivery-time assignments, maximizing a lexicographic
//! scoring objective:
//!
//! 1. **silent disagreement** — two correct nodes decide different values
//!    and nobody discovers a failure (the state the paper forbids; finding
//!    one is a reproduction bug),
//! 2. **loud disagreement** — different decisions, but discovered,
//! 3. **FD→BA fallback engagement** — the schedule forced the expensive
//!    fallback path,
//! 4. **message-count anomaly** — distance from the failure-free
//!    closed-form message count.
//!
//! Two strategies are implemented: [`Strategy::Random`] (seeded random
//! restarts: every episode draws a fresh full schedule) and
//! [`Strategy::Greedy`] (hill-climbing: each episode perturbs one
//! message's delay and keeps the change only if the score strictly
//! improves). Both are bounded by a *budget* of protocol executions.
//!
//! Every episode yields a replayable **schedule certificate**
//! ([`ScheduleCert`]): the search seed plus the full per-message delay
//! assignment recorded from the run. Re-installing the certificate through
//! [`EventNetwork::set_delay_overrides`] on a fresh network re-executes
//! the schedule byte-for-byte — [`run_search`] verifies this for the best
//! certificate it returns ([`SearchReport::replay_ok`]), and [`replay`]
//! lets tests and the CLI re-check any certificate independently.
//!
//! Schedule-search runs are classified like *timing-faulted* rows: the
//! scheduler violates the paper's N1 timing by construction, so FD→BA
//! fallback engagement counts as discovery evidence (loud, not silent) —
//! see [`crate::sweep::classify`].
//!
//! [`EventNetwork::set_delay_overrides`]: fd_simnet::EventNetwork::set_delay_overrides
//!
//! ```
//! use fd_core::schedsearch::{run_search, SearchConfig, Strategy};
//! use fd_core::sweep::Protocol;
//!
//! let report = run_search(&SearchConfig {
//!     budget: 4,
//!     ..SearchConfig::new(Protocol::ChainFd, 5, 1, 7)
//! })
//! .unwrap();
//! assert!(report.replay_ok);
//! assert!(!report.silent_found(), "paper property violated");
//! ```

use crate::pool;
use crate::runner::{Cluster, FdRunReport, KeyDistReport, Schedule};
use crate::sweep::{classify, AdversaryKind, Protocol, Scenario, SchemeSpec, SweepOutcome};
use fd_simnet::{Engine, LatencySpec};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// How the search explores the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Strategy {
    /// Seeded random restarts: every episode draws a fresh full schedule
    /// uniformly within the latency bounds.
    Random,
    /// Greedy hill-climbing: every episode perturbs one message's delay
    /// and keeps the perturbation only on strict score improvement.
    Greedy,
}

impl Strategy {
    /// Every strategy, in canonical order.
    pub const ALL: [Strategy; 2] = [Strategy::Random, Strategy::Greedy];

    /// Stable machine-readable name (used in reports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Greedy => "greedy",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Result<Strategy, String> {
        Ok(match name {
            "random" | "restarts" => Strategy::Random,
            "greedy" | "hillclimb" => Strategy::Greedy,
            other => return Err(format!("unknown strategy {other} (random|greedy)")),
        })
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The search objective, ordered lexicographically: silent disagreement
/// dominates loud disagreement dominates fallback engagement dominates the
/// message-count anomaly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Score {
    /// Two correct nodes decided differently with no discovery — the state
    /// the paper's F-properties forbid. A search that maximizes this to
    /// `true` has found a reproduction bug.
    pub silent_disagreement: bool,
    /// Two correct nodes decided differently, but at least one correct
    /// node (or the engaged fallback) discovered a failure.
    pub loud_disagreement: bool,
    /// At least one node took the FD→BA fallback path.
    pub fallback_engaged: bool,
    /// Absolute distance of the measured message count from the
    /// failure-free closed form.
    pub message_anomaly: u64,
}

impl Score {
    fn key(&self) -> (bool, bool, bool, u64) {
        (
            self.silent_disagreement,
            self.loud_disagreement,
            self.fallback_engaged,
            self.message_anomaly,
        )
    }

    /// `true` when the run was indistinguishable from a clean one.
    pub fn is_clean(&self) -> bool {
        self.key() == (false, false, false, 0)
    }

    /// Compact label for report tables, most severe component first.
    pub fn label(&self) -> String {
        if self.silent_disagreement {
            "SILENT_DISAGREEMENT".to_string()
        } else if self.loud_disagreement {
            "loud_disagreement".to_string()
        } else if self.fallback_engaged {
            "fallback".to_string()
        } else if self.message_anomaly > 0 {
            format!("anomaly:{}", self.message_anomaly)
        } else {
            "clean".to_string()
        }
    }
}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A fully specified search: one scenario shape plus a strategy and a
/// budget of protocol executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Protocol under attack.
    pub protocol: Protocol,
    /// System size.
    pub n: usize,
    /// Fault budget (shapes the protocol, not the scheduler).
    pub t: usize,
    /// Signature scheme.
    pub scheme: SchemeSpec,
    /// Seed for key material, the base latency model, *and* the search's
    /// own randomness — one seed makes the whole search replayable.
    pub seed: u64,
    /// The latency envelope the scheduler must stay within.
    pub latency: LatencySpec,
    /// Optional byzantine node injected alongside the adversarial
    /// scheduler (default: none — the scheduler is the only adversary).
    pub adversary: AdversaryKind,
    /// Search strategy.
    pub strategy: Strategy,
    /// Number of episodes the search may spend (≥ 1; episode 0 is always
    /// the unperturbed baseline). Each episode is one protocol execution,
    /// except under partial synchrony where admissibility enforcement may
    /// re-execute an episode up to three times (see the module docs).
    pub budget: usize,
}

impl SearchConfig {
    /// A search with the defaults used by `lafd search`: jitter with two
    /// extra rounds of freedom, the tiny scheme, no byzantine node, random
    /// restarts, budget 100.
    pub fn new(protocol: Protocol, n: usize, t: usize, seed: u64) -> Self {
        SearchConfig {
            protocol,
            n,
            t,
            scheme: SchemeSpec::Tiny,
            seed,
            latency: LatencySpec::Jitter { extra: 2 },
            adversary: AdversaryKind::None,
            strategy: Strategy::Random,
            budget: 100,
        }
    }

    /// The sweep scenario this search attacks (always on the event engine).
    pub fn scenario(&self) -> Scenario {
        Scenario {
            protocol: self.protocol,
            n: self.n,
            t: self.t,
            adversary: self.adversary,
            scheme: self.scheme,
            seed: self.seed,
            engine: Engine::Event,
            latency: self.latency,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.budget == 0 {
            return Err("search budget must be at least 1".to_string());
        }
        if !self.protocol.admissible(self.n, self.t) {
            return Err(format!(
                "protocol {} is not admissible at n={}, t={}",
                self.protocol, self.n, self.t
            ));
        }
        if !self.adversary.applies_to(self.protocol) {
            return Err(format!(
                "adversary {} cannot speak protocol {}",
                self.adversary, self.protocol
            ));
        }
        Ok(())
    }
}

/// One message's scheduled flight time within a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perturbation {
    /// Send index (the k-th message handed to the transport).
    pub index: u64,
    /// The round in which the message was sent (for bound validation).
    pub round: u32,
    /// Flight time in virtual ticks.
    pub ticks: u64,
}

/// A byte-deterministic, replayable delivery schedule: the search seed
/// plus the full per-message delay assignment of one episode.
///
/// Re-executing the certificate on a fresh [`fd_simnet::EventNetwork`]
/// (via the per-message delay-override hook) reproduces the generating
/// run exactly — message counts, wire bytes, and per-node outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleCert {
    /// The scenario shape the schedule attacks.
    pub config: SearchConfig,
    /// The episode that produced this schedule.
    pub episode: usize,
    /// The full delay assignment, one entry per sent message in send
    /// order.
    pub perturbations: Vec<Perturbation>,
}

impl ScheduleCert {
    /// The certificate as an override map for
    /// [`fd_simnet::EventNetwork::set_delay_overrides`] /
    /// [`Cluster::with_schedule`].
    pub fn schedule(&self) -> Schedule {
        Arc::new(
            self.perturbations
                .iter()
                .map(|p| (p.index, p.ticks))
                .collect::<HashMap<u64, u64>>(),
        )
    }

    /// Check that every scheduled delay lies within the latency spec's
    /// admissible envelope for the round it was sent in.
    pub fn validate(&self) -> Result<(), String> {
        for p in &self.perturbations {
            let (lo, hi) = self.config.latency.tick_bounds(p.round);
            if !(lo..=hi).contains(&p.ticks) {
                return Err(format!(
                    "perturbation {} (round {}): {} ticks outside [{lo}, {hi}]",
                    p.index, p.round, p.ticks
                ));
            }
        }
        Ok(())
    }
}

/// Measurements from one search episode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpisodeRow {
    /// Episode number (0 is the unperturbed baseline).
    pub episode: usize,
    /// Objective value of the episode's run.
    pub score: Score,
    /// Messages of the protocol run.
    pub messages: usize,
    /// Wire bytes of the protocol run.
    pub bytes: usize,
    /// Outcome classification (schedule-search runs count as
    /// timing-faulted, so fallback engagement is discovery evidence).
    pub outcome: SweepOutcome,
    /// Whether this episode became the search's new incumbent.
    pub accepted: bool,
}

/// The full result of one search: every episode, the best certificate,
/// and the replay verification of that certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchReport {
    /// The search that produced this report.
    pub config: SearchConfig,
    /// One row per executed episode, in execution order.
    pub episodes: Vec<EpisodeRow>,
    /// The best (worst-for-the-protocol) schedule found.
    pub best: ScheduleCert,
    /// The best episode's score.
    pub best_score: Score,
    /// The best episode's message count.
    pub best_messages: usize,
    /// The best episode's wire bytes.
    pub best_bytes: usize,
    /// The best episode's outcome classification.
    pub best_outcome: SweepOutcome,
    /// Whether replaying [`SearchReport::best`] on a fresh network
    /// reproduced the episode exactly (messages, bytes, outcome, and the
    /// full delay log).
    pub replay_ok: bool,
}

impl SearchReport {
    /// Episodes whose runs were distinguishable from a clean run — loud
    /// outcomes are *findings*, recorded but not failures.
    pub fn findings(&self) -> Vec<&EpisodeRow> {
        self.episodes
            .iter()
            .filter(|e| !e.score.is_clean())
            .collect()
    }

    /// `true` iff any episode exhibited silent disagreement — the one
    /// result that fails a search.
    pub fn silent_found(&self) -> bool {
        self.episodes.iter().any(|e| e.score.silent_disagreement)
    }

    /// Whether the search upholds its contract: no silent disagreement
    /// discovered and the best certificate replays exactly.
    pub fn ok(&self) -> bool {
        !self.silent_found() && self.replay_ok
    }

    /// Serialize as deterministic JSON (stable field order, no floats, no
    /// timestamps): rerunning the same config yields identical bytes.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut s = String::from("{\n  \"config\": {");
        s.push_str(&format!(
            "\"protocol\": \"{}\", \"n\": {}, \"t\": {}, \"scheme\": \"{}\", \
             \"seed\": {}, \"latency\": \"{}\", \"adversary\": \"{}\", \
             \"strategy\": \"{}\", \"budget\": {}",
            c.protocol, c.n, c.t, c.scheme, c.seed, c.latency, c.adversary, c.strategy, c.budget
        ));
        s.push_str("},\n  \"episodes\": [\n");
        for (i, e) in self.episodes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"episode\": {}, \"score\": \"{}\", \"messages\": {}, \
                 \"bytes\": {}, \"outcome\": \"{}\", \"accepted\": {}}}{}\n",
                e.episode,
                e.score,
                e.messages,
                e.bytes,
                e.outcome,
                e.accepted,
                if i + 1 < self.episodes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"best\": {");
        s.push_str(&format!(
            "\"episode\": {}, \"score\": \"{}\", \"messages\": {}, \"bytes\": {}, \
             \"outcome\": \"{}\", \"perturbations\": [",
            self.best.episode,
            self.best_score,
            self.best_messages,
            self.best_bytes,
            self.best_outcome
        ));
        for (i, p) in self.best.perturbations.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"index\": {}, \"round\": {}, \"ticks\": {}}}",
                p.index, p.round, p.ticks
            ));
        }
        s.push_str("]},\n");
        s.push_str(&format!(
            "  \"summary\": {{\"episodes\": {}, \"findings\": {}, \"silent_found\": {}, \"replay_ok\": {}}}\n}}\n",
            self.episodes.len(),
            self.findings().len(),
            self.silent_found(),
            self.replay_ok
        ));
        s
    }

    /// Render as markdown (deterministic): the config, a findings table,
    /// and the best certificate summary.
    pub fn to_markdown(&self) -> String {
        let c = &self.config;
        let mut s = String::from("# lafd search report\n\n");
        s.push_str(&format!(
            "Protocol **{}**, n = {}, t = {}, scheme {}, seed {}, latency `{}`, \
             adversary {}, strategy **{}**, budget {}.\n\n",
            c.protocol, c.n, c.t, c.scheme, c.seed, c.latency, c.adversary, c.strategy, c.budget
        ));
        let findings = self.findings();
        if findings.is_empty() {
            s.push_str("No episode was distinguishable from a clean run.\n\n");
        } else {
            s.push_str("| episode | score | messages | bytes | outcome | accepted |\n");
            s.push_str("|---|---|---|---|---|---|\n");
            for e in &findings {
                s.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} |\n",
                    e.episode,
                    e.score,
                    e.messages,
                    e.bytes,
                    e.outcome,
                    if e.accepted { "yes" } else { "no" }
                ));
            }
            s.push('\n');
        }
        s.push_str(&format!(
            "Worst schedule: episode {} scoring **{}** ({} messages, {} bytes, {}), \
             certificate of {} per-message delays; replay {}.\n",
            self.best.episode,
            self.best_score,
            self.best_messages,
            self.best_bytes,
            self.best_outcome,
            self.best.perturbations.len(),
            if self.replay_ok {
                "reproduced the run exactly"
            } else {
                "FAILED to reproduce the run"
            }
        ));
        s.push_str(&format!(
            "\n{} episodes, {} findings, silent disagreement {}.\n",
            self.episodes.len(),
            findings.len(),
            if self.silent_found() {
                "**FOUND (BUG)**"
            } else {
                "never observed"
            }
        ));
        s
    }
}

/// What one schedule (a certificate or an episode) measured when executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayResult {
    /// Objective value of the run.
    pub score: Score,
    /// Messages of the protocol run.
    pub messages: usize,
    /// Wire bytes of the protocol run.
    pub bytes: usize,
    /// Outcome classification.
    pub outcome: SweepOutcome,
    /// The full per-message delay assignment the run actually used.
    pub delay_log: Vec<(u32, u64)>,
}

/// SplitMix-style avalanche combining two words — the search's only
/// source of randomness, so every episode is a pure function of
/// `(config.seed, episode, proposal)`.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x5343_4845_4453; // "SCHEDS" salt
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draw a delay uniformly within the spec's envelope for `round`.
fn draw_delay(latency: LatencySpec, round: u32, rand: u64) -> u64 {
    let (lo, hi) = latency.tick_bounds(round);
    lo + rand % (hi - lo + 1)
}

/// Score one executed run. Schedule-search runs are always classified as
/// timing-faulted (`network_faulted = true` in [`classify`]): the
/// adversarial scheduler violates N1 by construction, so FD→BA fallback
/// engagement is discovery evidence — a fallback split is *loud*, never
/// silent.
pub fn score_run(run: &FdRunReport, expected_messages: usize) -> (Score, SweepOutcome) {
    let outcome = classify(run, true);
    let outs = run.correct_outcomes();
    let fallback_engaged = run.used_fallback.iter().any(|&f| f);
    let any_discovery = outs.iter().any(crate::Outcome::is_discovered) || fallback_engaged;
    let decided: BTreeSet<Vec<u8>> = outs
        .iter()
        .filter_map(|o| o.decided().map(<[u8]>::to_vec))
        .collect();
    let score = Score {
        silent_disagreement: outcome == SweepOutcome::SilentDisagreement,
        loud_disagreement: decided.len() > 1 && any_discovery,
        fallback_engaged,
        message_anomaly: run.stats.messages_total.abs_diff(expected_messages) as u64,
    };
    (score, outcome)
}

/// Execute the config's scenario under the given schedule (or the base
/// latency model when `None`), reusing a precomputed key distribution.
/// One episode = one [`RunSpec`](crate::spec::RunSpec) against the
/// config's event cluster — specs are plain data, which is what lets
/// random restarts fan out across threads.
fn execute(
    config: &SearchConfig,
    keydist: &Option<KeyDistReport>,
    schedule: Option<Schedule>,
) -> ReplayResult {
    let cluster = Cluster::new(config.n, config.t, config.scheme.build(), config.seed)
        .with_engine(Engine::Event)
        .with_latency(config.latency)
        .with_delay_log();
    let mut spec = config.scenario().spec();
    spec.schedule = schedule;
    let run = cluster.run_with_keys(&spec, keydist.as_ref());
    let expected = config.protocol.expected_messages(config.n, config.t);
    let (score, outcome) = score_run(&run, expected);
    ReplayResult {
        score,
        messages: run.stats.messages_total,
        bytes: run.stats.bytes_total,
        outcome,
        delay_log: run.delay_log.unwrap_or_default(),
    }
}

/// Execute a proposed schedule and force the *result* to be admissible.
///
/// Proposal delays are drawn from the bounds of the round each message
/// was sent in during the incumbent run — but applying them can shift a
/// later message into a round with tighter bounds (only possible under
/// [`LatencySpec::PartialSynchrony`], whose envelope narrows at the GST
/// boundary). Any recorded delay outside its actual round's envelope is
/// clamped and the episode re-executed, up to three passes; if the log
/// still violates the envelope the episode falls back to the unperturbed
/// baseline, which the latency model keeps admissible by construction.
/// Every certificate the search emits therefore passes
/// [`ScheduleCert::validate`].
fn execute_admissible(
    config: &SearchConfig,
    keydist: &Option<KeyDistReport>,
    overrides: Option<HashMap<u64, u64>>,
) -> ReplayResult {
    let mut schedule = overrides;
    for _ in 0..3 {
        let result = execute(config, keydist, schedule.clone().map(Arc::new));
        let clamps: Vec<(u64, u64)> = result
            .delay_log
            .iter()
            .enumerate()
            .filter_map(|(i, &(round, ticks))| {
                let (lo, hi) = config.latency.tick_bounds(round);
                if (lo..=hi).contains(&ticks) {
                    None
                } else {
                    Some((i as u64, ticks.clamp(lo, hi)))
                }
            })
            .collect();
        if clamps.is_empty() {
            return result;
        }
        let mut map = schedule.unwrap_or_default();
        map.extend(clamps);
        schedule = Some(map);
    }
    execute(config, keydist, None)
}

/// The key distribution every episode of a search reuses: keys are
/// established in the quiet synchronous setup phase, outside the
/// scheduler's reach (see [`Cluster::keydist_for`]).
fn setup_keys(config: &SearchConfig) -> Option<KeyDistReport> {
    let cluster = Cluster::new(config.n, config.t, config.scheme.build(), config.seed)
        .with_engine(Engine::Event)
        .with_latency(config.latency);
    cluster.keydist_for(config.protocol)
}

/// Turn a recorded delay log into a certificate.
fn cert_from_log(config: &SearchConfig, episode: usize, log: &[(u32, u64)]) -> ScheduleCert {
    ScheduleCert {
        config: *config,
        episode,
        perturbations: log
            .iter()
            .enumerate()
            .map(|(i, &(round, ticks))| Perturbation {
                index: i as u64,
                round,
                ticks,
            })
            .collect(),
    }
}

/// Run the search single-threaded. Deterministic: the same config
/// produces a byte-identical [`SearchReport`] (and JSON/markdown
/// rendering) on every invocation — and the same bytes as
/// [`run_search_parallel`] at any thread count.
///
/// # Errors
///
/// Returns an error for a zero budget, an inadmissible `(protocol, n, t)`
/// shape, or an adversary that cannot speak the protocol.
pub fn run_search(config: &SearchConfig) -> Result<SearchReport, String> {
    run_search_parallel(config, 1)
}

/// Run the search with random restarts fanned out across `threads`
/// workers (the sweep's thread-pool primitive, `fd_core`'s internal pool).
///
/// Every [`Strategy::Random`] episode is a pure function of
/// `(config.seed, episode)` applied to the episode-0 baseline, so
/// restarts are embarrassingly parallel; results are merged in episode
/// (seed) order, which keeps the report byte-identical for any thread
/// count. [`Strategy::Greedy`] is inherently sequential (each episode
/// perturbs the incumbent) and ignores `threads`.
///
/// # Errors
///
/// Returns an error for a zero budget, an inadmissible `(protocol, n, t)`
/// shape, or an adversary that cannot speak the protocol.
pub fn run_search_parallel(config: &SearchConfig, threads: usize) -> Result<SearchReport, String> {
    config.validate()?;
    let keydist = setup_keys(config);

    // Episode 0: the unperturbed baseline (the latency model's own
    // schedule) seeds both strategies.
    let baseline = execute(config, &keydist, None);
    let mut episodes = vec![EpisodeRow {
        episode: 0,
        score: baseline.score,
        messages: baseline.messages,
        bytes: baseline.bytes,
        outcome: baseline.outcome,
        accepted: true,
    }];
    let mut best: (usize, ReplayResult) = (0, baseline.clone());

    match config.strategy {
        Strategy::Random => {
            // Each restart draws a fresh full schedule: one delay per
            // message of the *baseline's* log, uniform within the round's
            // bounds. Messages beyond the proposal (the perturbed run may
            // send in different rounds) fall back to the base model.
            // Referencing the baseline rather than the incumbent is a
            // deliberate change from the original sequential search: an
            // accepted episode's log can differ from the baseline's (more
            // messages, later rounds), so the two variants can visit
            // different schedules for the same seed — but only
            // baseline-referenced draws make episodes independent, which
            // is what the fan-out below needs for thread-count-invariant
            // reports.
            let reference = baseline.delay_log;
            let results = pool::parallel_indexed(config.budget.saturating_sub(1), threads, |i| {
                let episode = i + 1;
                let eseed = mix(config.seed, episode as u64);
                let overrides: HashMap<u64, u64> = reference
                    .iter()
                    .enumerate()
                    .map(|(k, &(round, _))| {
                        let rand = mix(eseed, k as u64);
                        (k as u64, draw_delay(config.latency, round, rand))
                    })
                    .collect();
                execute_admissible(config, &keydist, Some(overrides))
            });
            // Merge in episode (seed) order: byte-deterministic for any
            // thread count.
            for (i, result) in results.into_iter().enumerate() {
                let episode = i + 1;
                let accepted = result.score > best.1.score;
                episodes.push(EpisodeRow {
                    episode,
                    score: result.score,
                    messages: result.messages,
                    bytes: result.bytes,
                    outcome: result.outcome,
                    accepted,
                });
                if accepted {
                    best = (episode, result);
                }
            }
        }
        Strategy::Greedy => {
            // Hill-climb: perturb one message's delay per episode, keep
            // the perturbation only on strict improvement. Accepted
            // perturbations accumulate in the override map.
            let mut overrides: HashMap<u64, u64> = HashMap::new();
            for episode in 1..config.budget {
                let eseed = mix(config.seed, episode as u64);
                let current = &best.1;
                if current.delay_log.is_empty() {
                    break; // nothing to perturb (the run sent no messages)
                }
                let index = (mix(eseed, 0) % current.delay_log.len() as u64) as usize;
                let round = current.delay_log[index].0;
                let ticks = draw_delay(config.latency, round, mix(eseed, 1));
                let mut proposal = overrides.clone();
                proposal.insert(index as u64, ticks);
                let result = execute_admissible(config, &keydist, Some(proposal.clone()));
                let accepted = result.score > current.score;
                episodes.push(EpisodeRow {
                    episode,
                    score: result.score,
                    messages: result.messages,
                    bytes: result.bytes,
                    outcome: result.outcome,
                    accepted,
                });
                if accepted {
                    overrides = proposal;
                    best = (episode, result);
                }
            }
        }
    }

    // The best episode's full recorded schedule is the certificate;
    // it must lie within the latency envelope (execute_admissible
    // guarantees this, and the baseline is admissible by construction)
    // and replaying it must reproduce the episode exactly.
    let cert = cert_from_log(config, best.0, &best.1.delay_log);
    cert.validate()
        .map_err(|e| format!("internal error: inadmissible certificate emitted: {e}"))?;
    let replayed = execute(config, &keydist, Some(cert.schedule()));
    let replay_ok = replayed == best.1;

    Ok(SearchReport {
        config: *config,
        episodes,
        best: cert,
        best_score: best.1.score,
        best_messages: best.1.messages,
        best_bytes: best.1.bytes,
        best_outcome: best.1.outcome,
        replay_ok,
    })
}

/// Re-execute a certificate on a fresh cluster and network, measuring the
/// run from scratch (key distribution included). Used by tests and the
/// CLI to confirm a certificate stands on its own.
pub fn replay(cert: &ScheduleCert) -> ReplayResult {
    let keydist = setup_keys(&cert.config);
    execute(&cert.config, &keydist, Some(cert.schedule()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(protocol: Protocol, strategy: Strategy, seed: u64) -> SearchConfig {
        SearchConfig {
            strategy,
            budget: 6,
            ..SearchConfig::new(protocol, 5, 1, seed)
        }
    }

    #[test]
    fn score_orders_lexicographically() {
        let clean = Score::default();
        let anomaly = Score {
            message_anomaly: 9,
            ..clean
        };
        let fallback = Score {
            fallback_engaged: true,
            ..clean
        };
        let loud = Score {
            loud_disagreement: true,
            ..clean
        };
        let silent = Score {
            silent_disagreement: true,
            ..clean
        };
        assert!(clean < anomaly && anomaly < fallback && fallback < loud && loud < silent);
        assert!(clean.is_clean() && !anomaly.is_clean());
        assert_eq!(silent.label(), "SILENT_DISAGREEMENT");
        assert_eq!(anomaly.label(), "anomaly:9");
    }

    #[test]
    fn search_is_deterministic_and_replayable() {
        for strategy in Strategy::ALL {
            let cfg = config(Protocol::ChainFd, strategy, 7);
            let a = run_search(&cfg).unwrap();
            let b = run_search(&cfg).unwrap();
            assert_eq!(a, b, "{strategy}: report not deterministic");
            assert_eq!(a.to_json(), b.to_json());
            assert!(a.replay_ok, "{strategy}: best cert did not replay");
            assert!(!a.silent_found(), "{strategy}: silent disagreement");
            assert_eq!(a.episodes.len(), cfg.budget);
        }
    }

    #[test]
    fn certs_stay_within_latency_bounds() {
        for strategy in Strategy::ALL {
            let report = run_search(&config(Protocol::ChainFd, strategy, 3)).unwrap();
            report.best.validate().unwrap();
            assert!(!report.best.perturbations.is_empty());
        }
    }

    #[test]
    fn independent_replay_matches_the_report() {
        let report = run_search(&config(Protocol::FdToBa, Strategy::Random, 11)).unwrap();
        let replayed = replay(&report.best);
        assert_eq!(replayed.score, report.best_score);
        assert_eq!(replayed.messages, report.best_messages);
        assert_eq!(replayed.bytes, report.best_bytes);
        assert_eq!(replayed.outcome, report.best_outcome);
    }

    #[test]
    fn degenerate_sync_latency_has_no_schedule_freedom() {
        let cfg = SearchConfig {
            latency: LatencySpec::Synchronous,
            budget: 4,
            ..SearchConfig::new(Protocol::ChainFd, 5, 1, 2)
        };
        let report = run_search(&cfg).unwrap();
        // Every schedule the search can draw equals the baseline.
        assert!(report.episodes.iter().all(|e| e.score.is_clean()));
        assert!(report.replay_ok);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(run_search(&SearchConfig {
            budget: 0,
            ..SearchConfig::new(Protocol::ChainFd, 5, 1, 1)
        })
        .is_err());
        assert!(run_search(&SearchConfig {
            ..SearchConfig::new(Protocol::PhaseKing, 5, 2, 1)
        })
        .is_err());
        assert!(run_search(&SearchConfig {
            adversary: AdversaryKind::TamperBody,
            ..SearchConfig::new(Protocol::DolevStrong, 5, 1, 1)
        })
        .is_err());
    }
}
