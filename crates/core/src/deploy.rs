//! The deployment layer: multi-process agreement runs over a discovery
//! registry and the non-blocking socket mesh.
//!
//! Everything below `lafd cluster` lives here:
//!
//! * [`Registry`] — a small TCP discovery service speaking the framed
//!   [`crate::wire`] registry dialect: workers register `(node, addr)`,
//!   block
//!   until the full roster is known (the barrier that opens a run), pass
//!   phase barriers between key distribution and the protocol, and
//!   deposit a [`WorkerSummary`] at teardown. One registry serves many
//!   runs, keyed by run id.
//! * [`registry_call`] — the one-shot framed client used by workers and
//!   the orchestrator (one request, one reply, one connection).
//! * [`run_worker`] — the whole life of one worker process: build the
//!   [`Cluster`] from a wire request, register, mesh up
//!   ([`MeshPeers`]/[`NonblockingMesh`]), run the key distribution and
//!   then the protocol as two mesh phases separated by a registry
//!   barrier, and tear down with a summary. Any transport or registry
//!   failure is returned as an error — the CLI maps it to a nonzero exit
//!   code, so a lost or hung peer is always loud.
//! * [`assemble_report`] — fold the `n` deposited summaries back into
//!   the standard [`FdRunReport`]. Because the mesh reproduces the sync
//!   engine's delivery order and early-termination rule exactly, the
//!   assembled report's counters are **byte-identical** to
//!   [`Cluster::run`] for the same spec and seed (the cluster
//!   cross-validation tests compare `to_json()` output directly).
//!
//! Phase discipline mirrors [`Cluster::run`]: key distribution always
//! runs synchronously (paper §3), then the protocol phase runs with the
//! spec's adversary substitution. A non-synchronous latency spec becomes
//! a wall-clock [`DelayShim`] on the protocol-phase links — virtual-tick
//! delays scaled to real time — which stretches socket timing without
//! changing the round structure, so counters stay comparable.

use crate::localauth::{KeyDistNode, KEYDIST_ROUNDS};
use crate::runner::{Cluster, FdRunReport, KeyDistReport};
use crate::spec::{Protocol, RunSpec, SpecBuilder};
use crate::wire::{
    registry_reply_from_json, registry_reply_to_json, registry_request_from_json,
    registry_request_to_json, RegistryReply, RegistryRequest, WorkerSummary,
};
use crate::{ba, fd, keys};
use fd_simnet::transport::chaos::{
    transient, with_retry, ChaosInjector, ChaosPhase, ChaosSpec, RetryCtx, RetryPolicy,
    CHAOS_KILL_EXIT, COLLATERAL_EXIT,
};
use fd_simnet::transport::{DelayShim, MeshPeers, MeshRun, NonblockingMesh, TransportError};
use fd_simnet::{LatencySpec, NetStats, Node, NodeId};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Upper bound on a single registry frame (a roster or summary set for
/// any plausible `n` is far below this).
const MAX_FRAME: usize = 16 * 1024 * 1024;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one length-prefixed frame (4-byte big-endian length + body).
pub fn send_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read one length-prefixed frame.
pub fn recv_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// One registry round trip: connect, send the request, await the reply.
/// `timeout` bounds the whole exchange (connect, write, and the blocking
/// wait a register/barrier request implies).
pub fn registry_call(
    addr: &str,
    request: &RegistryRequest,
    timeout: Duration,
) -> Result<RegistryReply, String> {
    let sock: SocketAddr = addr
        .parse()
        .map_err(|e| format!("registry address {addr:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| format!("connect registry {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("registry socket setup: {e}"))?;
    send_frame(&mut stream, registry_request_to_json(request).as_bytes())
        .map_err(|e| format!("send to registry: {e}"))?;
    let body = recv_frame(&mut stream).map_err(|e| format!("registry reply: {e}"))?;
    let text = String::from_utf8(body).map_err(|e| format!("registry reply: {e}"))?;
    match registry_reply_from_json(&text)? {
        RegistryReply::Error { error } => Err(format!("registry: {error}")),
        reply => Ok(reply),
    }
}

/// Sort a stringified [`registry_call`] failure into the typed transport
/// taxonomy: connection-level trouble (connect, send, lost reply) is
/// transient and worth retrying; registry-level refusals (fencing, bad
/// requests, barrier expiry) are final.
fn classify_registry_error(node: NodeId, error: String) -> TransportError {
    let transient_failure = error.starts_with("connect registry")
        || error.starts_with("send to registry")
        || error.starts_with("registry reply:")
        || error.starts_with("registry socket setup");
    if transient_failure {
        TransportError::Io {
            node,
            context: "registry call".to_string(),
            error,
        }
    } else {
        TransportError::Protocol {
            node,
            detail: error,
        }
    }
}

/// [`registry_call`] under a retry policy: transient connection failures
/// back off (capped, seeded jitter) and retry up to the budget; an
/// exhausted budget surfaces as the typed
/// [`TransportError::Exhausted`]. Safe because every registry operation
/// is idempotent per `(run, node, incarnation)`: re-registering the same
/// address, re-arriving at a barrier, and re-depositing a summary all
/// land in the same state.
pub fn registry_call_with(
    addr: &str,
    request: &RegistryRequest,
    timeout: Duration,
    node: NodeId,
    retry: &RetryCtx,
    chaos: Option<&ChaosInjector>,
) -> Result<RegistryReply, TransportError> {
    with_retry(node, "registry call", retry, transient, |attempt| {
        if let Some(inj) = chaos {
            if inj.refuse_connect("registry", attempt) {
                return Err(TransportError::Io {
                    node,
                    context: "registry call".to_string(),
                    error: "chaos: connection refused".to_string(),
                });
            }
        }
        registry_call(addr, request, timeout).map_err(|e| classify_registry_error(node, e))
    })
}

// ---------------------------------------------------------------------
// Registry service
// ---------------------------------------------------------------------

#[derive(Default)]
struct RunState {
    /// Highest incarnation admitted for this run. A register/barrier/
    /// teardown from a higher incarnation advances the generation and
    /// clears all state below; one from a lower incarnation is fenced
    /// with a typed error — a stale worker can never corrupt the
    /// restarted run.
    generation: u64,
    roster: BTreeMap<usize, String>,
    barriers: HashMap<String, HashSet<usize>>,
    summaries: Vec<WorkerSummary>,
}

/// Admit `incarnation` into the run: advance (and reset) the generation
/// if it is newer, fence it if it is stale.
fn admit(slot: &mut RunState, incarnation: u64) -> Result<(), u64> {
    if incarnation > slot.generation {
        slot.generation = incarnation;
        slot.roster.clear();
        slot.barriers.clear();
        slot.summaries.clear();
    }
    if incarnation < slot.generation {
        Err(slot.generation)
    } else {
        Ok(())
    }
}

struct RegistryState {
    runs: Mutex<HashMap<String, RunState>>,
    changed: Condvar,
}

/// The discovery registry behind `lafd registry`: a threaded TCP service
/// answering one framed [`RegistryRequest`] per connection. Register and
/// barrier requests block (bounded by [`Registry::with_wait_limit`])
/// until the rest of the run arrives, which is what makes them barriers.
pub struct Registry {
    listener: TcpListener,
    state: Arc<RegistryState>,
    wait_limit: Duration,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("addr", &self.listener.local_addr().ok())
            .field("wait_limit", &self.wait_limit)
            .finish()
    }
}

impl Registry {
    /// Bind the registry (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<Registry> {
        Ok(Registry {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(RegistryState {
                runs: Mutex::new(HashMap::new()),
                changed: Condvar::new(),
            }),
            wait_limit: Duration::from_secs(120),
        })
    }

    /// The bound address (workers connect here).
    ///
    /// # Panics
    ///
    /// Panics if the listener has no local address (cannot happen for a
    /// successfully bound socket).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Bound the blocking wait of register/barrier requests; expiry
    /// answers with a registry error instead of holding the connection
    /// forever.
    #[must_use]
    pub fn with_wait_limit(mut self, wait_limit: Duration) -> Self {
        self.wait_limit = wait_limit;
        self
    }

    /// Accept and serve connections forever (one thread per connection —
    /// registry traffic is a handful of exchanges per worker per run).
    pub fn serve(&self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let state = Arc::clone(&self.state);
            let wait_limit = self.wait_limit;
            std::thread::spawn(move || handle_connection(stream, &state, wait_limit));
        }
    }

    /// Serve exactly `count` connections, then return (test harness).
    pub fn serve_connections(&self, count: usize) -> std::io::Result<()> {
        let mut handles = Vec::with_capacity(count);
        for _ in 0..count {
            let (stream, _) = self.listener.accept()?;
            let state = Arc::clone(&self.state);
            let wait_limit = self.wait_limit;
            handles.push(std::thread::spawn(move || {
                handle_connection(stream, &state, wait_limit)
            }));
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn handle_connection(mut stream: TcpStream, state: &RegistryState, wait_limit: Duration) {
    // A worker that never completes its request frame must not pin the
    // handler thread forever.
    let _ = stream.set_read_timeout(Some(wait_limit));
    let reply = match recv_frame(&mut stream)
        .map_err(|e| format!("receive request: {e}"))
        .and_then(|body| String::from_utf8(body).map_err(|e| format!("request not utf-8: {e}")))
        .and_then(|text| registry_request_from_json(&text))
    {
        Ok(request) => answer(request, state, wait_limit),
        Err(error) => {
            // Malformed traffic gets a typed error reply (and a log line)
            // rather than a silently dropped connection.
            eprintln!("lafd registry: rejecting malformed request: {error}");
            RegistryReply::Error { error }
        }
    };
    if let Err(e) = send_frame(&mut stream, registry_reply_to_json(&reply).as_bytes()) {
        // The peer vanished between request and reply (crash, chaos
        // kill). Log it — a silently dropped reply is indistinguishable
        // from a registry bug when debugging a campaign.
        eprintln!("lafd registry: dropped reply ({e})");
    }
}

fn answer(request: RegistryRequest, state: &RegistryState, wait_limit: Duration) -> RegistryReply {
    let error = |error: String| RegistryReply::Error { error };
    match request {
        RegistryRequest::Register {
            run,
            node,
            n,
            addr,
            incarnation,
        } => {
            let mut runs = state.runs.lock().expect("registry lock");
            let slot = runs.entry(run.clone()).or_default();
            if let Err(generation) = admit(slot, incarnation) {
                return error(format!(
                    "run {run:?}: node {node} fenced (incarnation {incarnation} < generation {generation})"
                ));
            }
            if let Some(existing) = slot.roster.get(&node) {
                if *existing != addr {
                    return error(format!(
                        "run {run:?}: node {node} already registered at {existing}"
                    ));
                }
            }
            slot.roster.insert(node, addr);
            state.changed.notify_all();
            let (runs, timeout) = state
                .changed
                .wait_timeout_while(runs, wait_limit, |runs| {
                    runs.get(&run)
                        .is_none_or(|s| s.generation == incarnation && s.roster.len() < n)
                })
                .expect("registry lock");
            let Some(slot) = runs.get(&run) else {
                return error(format!("run {run:?} vanished while registering"));
            };
            if slot.generation != incarnation {
                return error(format!(
                    "run {run:?}: node {node} fenced (incarnation {incarnation} < generation {})",
                    slot.generation
                ));
            }
            if timeout.timed_out() {
                return error(format!(
                    "run {run:?}: roster incomplete after {wait_limit:?}"
                ));
            }
            let roster = &slot.roster;
            if roster.len() > n || roster.keys().any(|&k| k >= n) {
                return error(format!("run {run:?}: roster exceeds n = {n}"));
            }
            RegistryReply::Roster {
                peers: roster.iter().map(|(&k, v)| (k, v.clone())).collect(),
            }
        }
        RegistryRequest::Lookup { run, node } => {
            let runs = state.runs.lock().expect("registry lock");
            match runs.get(&run).and_then(|s| s.roster.get(&node)) {
                Some(addr) => RegistryReply::Addr {
                    node,
                    addr: addr.clone(),
                },
                None => error(format!("run {run:?}: node {node} not registered")),
            }
        }
        RegistryRequest::Barrier {
            run,
            node,
            n,
            phase,
            incarnation,
        } => {
            let mut runs = state.runs.lock().expect("registry lock");
            let slot = runs.entry(run.clone()).or_default();
            if let Err(generation) = admit(slot, incarnation) {
                return error(format!(
                    "run {run:?}: node {node} fenced at barrier {phase:?} (incarnation {incarnation} < generation {generation})"
                ));
            }
            slot.barriers.entry(phase.clone()).or_default().insert(node);
            state.changed.notify_all();
            let (runs, timeout) = state
                .changed
                .wait_timeout_while(runs, wait_limit, |runs| {
                    runs.get(&run).is_none_or(|s| {
                        s.generation == incarnation
                            && s.barriers
                                .get(&phase)
                                .is_none_or(|arrived| arrived.len() < n)
                    })
                })
                .expect("registry lock");
            if runs.get(&run).is_none_or(|s| s.generation != incarnation) {
                return error(format!(
                    "run {run:?}: node {node} fenced at barrier {phase:?} (the run restarted)"
                ));
            }
            if timeout.timed_out() {
                return error(format!(
                    "run {run:?}: barrier {phase:?} incomplete after {wait_limit:?}"
                ));
            }
            RegistryReply::Released { phase }
        }
        RegistryRequest::Teardown {
            run,
            node,
            summary,
            incarnation,
        } => {
            let mut runs = state.runs.lock().expect("registry lock");
            let slot = runs.entry(run.clone()).or_default();
            if let Err(generation) = admit(slot, incarnation) {
                return error(format!(
                    "run {run:?}: node {node} fenced at teardown (incarnation {incarnation} < generation {generation})"
                ));
            }
            // Idempotent per (node, generation): a retried deposit whose
            // first ack was lost just overwrites its own record.
            if let Some(existing) = slot.summaries.iter_mut().find(|s| s.node == node) {
                *existing = summary;
            } else {
                slot.summaries.push(summary);
            }
            state.changed.notify_all();
            RegistryReply::Ack
        }
        RegistryRequest::Collect { run } => {
            let runs = state.runs.lock().expect("registry lock");
            RegistryReply::Summaries {
                workers: runs
                    .get(&run)
                    .map(|s| s.summaries.clone())
                    .unwrap_or_default(),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-slot protocol node construction and extraction
// ---------------------------------------------------------------------

/// The protocol-phase round budget of a spec — the same
/// `params.rounds()` [`Cluster::run`] drives with.
pub fn protocol_rounds(cluster: &Cluster, spec: &RunSpec) -> u32 {
    let (n, t) = (cluster.n, cluster.t);
    match spec.protocol {
        Protocol::ChainFd => fd::ChainFdParams::new(n, t).rounds(),
        Protocol::NonAuthFd => fd::NonAuthParams::new(n, t).rounds(),
        Protocol::SmallRange => {
            fd::SmallRangeParams::new(n, t, spec.default_value.clone()).rounds()
        }
        Protocol::DolevStrong => {
            ba::DolevStrongParams::new(n, t, spec.default_value.clone()).rounds()
        }
        Protocol::PhaseKing => ba::PhaseKingParams::new(n, t, spec.default_value.clone()).rounds(),
        Protocol::Degradable => {
            ba::DegradableParams::new(n, t, spec.default_value.clone()).rounds()
        }
        Protocol::FdToBa => ba::FdToBaParams::new(n, t, spec.default_value.clone()).rounds(),
    }
}

/// Build the honest automaton for one slot — the single-slot mirror of
/// the per-protocol dispatch in [`Cluster::run`]. `store` is the slot's
/// key store from the key-distribution phase (`None` for the key-free
/// protocols).
///
/// # Panics
///
/// Panics if the protocol needs keys and `store` is `None`.
pub fn honest_protocol_node(
    cluster: &Cluster,
    spec: &RunSpec,
    me: NodeId,
    store: Option<&keys::KeyStore>,
) -> Box<dyn Node> {
    let (n, t) = (cluster.n, cluster.t);
    let cache = keys::VerifyCache::default();
    let keyed = || {
        store
            .expect("protocol needs a key store")
            .clone()
            .with_cache(cache.clone())
    };
    let input = |sender: NodeId| (me == sender).then(|| spec.input.clone());
    match spec.protocol {
        Protocol::ChainFd => {
            let params = fd::ChainFdParams::new(n, t);
            let value = input(params.sender);
            Box::new(fd::ChainFdNode::new(
                me,
                params,
                Arc::clone(&cluster.scheme),
                keyed(),
                cluster.keyring(me),
                value,
            ))
        }
        Protocol::NonAuthFd => {
            let params = fd::NonAuthParams::new(n, t);
            let value = input(params.sender);
            Box::new(fd::NonAuthFdNode::new(me, params, value))
        }
        Protocol::SmallRange => {
            let params = fd::SmallRangeParams::new(n, t, spec.default_value.clone());
            let value = input(params.sender);
            Box::new(fd::SmallRangeFdNode::new(
                me,
                params,
                Arc::clone(&cluster.scheme),
                keyed(),
                cluster.keyring(me),
                value,
            ))
        }
        Protocol::DolevStrong => {
            let params = ba::DolevStrongParams::new(n, t, spec.default_value.clone());
            let value = input(params.sender);
            Box::new(ba::DolevStrongNode::new(
                me,
                params,
                Arc::clone(&cluster.scheme),
                keyed(),
                cluster.keyring(me),
                value,
            ))
        }
        Protocol::PhaseKing => {
            let params = ba::PhaseKingParams::new(n, t, spec.default_value.clone());
            let value = input(params.sender);
            Box::new(ba::PhaseKingNode::new(me, params, value))
        }
        Protocol::Degradable => {
            let params = ba::DegradableParams::new(n, t, spec.default_value.clone());
            let value = input(params.sender);
            Box::new(ba::DegradableNode::new(
                me,
                params,
                Arc::clone(&cluster.scheme),
                keyed(),
                cluster.keyring(me),
                value,
            ))
        }
        Protocol::FdToBa => {
            let params = ba::FdToBaParams::new(n, t, spec.default_value.clone());
            let value = input(params.sender);
            Box::new(ba::FdToBaNode::new(
                me,
                params,
                Arc::clone(&cluster.scheme),
                keyed(),
                cluster.keyring(me),
                value,
            ))
        }
    }
}

/// Extract one slot's `(outcome, used_fallback, grade)` after a run —
/// the single-slot mirror of the outcome extraction in [`Cluster::run`].
/// A node that is not the protocol's honest automaton (an adversary
/// substitute) yields `(None, false, None)`, exactly as substituted
/// slots do in-process.
pub fn extract_slot(
    protocol: Protocol,
    node: Box<dyn Node>,
) -> (Option<crate::outcome::Outcome>, bool, Option<ba::Grade>) {
    let any = node.into_any();
    match protocol {
        Protocol::ChainFd => match any.downcast::<fd::ChainFdNode>() {
            Ok(n) => (Some(n.outcome().clone()), false, None),
            Err(_) => (None, false, None),
        },
        Protocol::NonAuthFd => match any.downcast::<fd::NonAuthFdNode>() {
            Ok(n) => (Some(n.outcome().clone()), false, None),
            Err(_) => (None, false, None),
        },
        Protocol::SmallRange => match any.downcast::<fd::SmallRangeFdNode>() {
            Ok(n) => (Some(n.outcome().clone()), false, None),
            Err(_) => (None, false, None),
        },
        Protocol::DolevStrong => match any.downcast::<ba::DolevStrongNode>() {
            Ok(n) => (Some(n.outcome().clone()), false, None),
            Err(_) => (None, false, None),
        },
        Protocol::PhaseKing => match any.downcast::<ba::PhaseKingNode>() {
            Ok(n) => (Some(n.outcome().clone()), false, None),
            Err(_) => (None, false, None),
        },
        Protocol::Degradable => match any.downcast::<ba::DegradableNode>() {
            Ok(n) => (Some(n.outcome().clone()), false, n.grade()),
            Err(_) => (None, false, None),
        },
        Protocol::FdToBa => match any.downcast::<ba::FdToBaNode>() {
            Ok(n) => (Some(n.outcome().clone()), n.used_fallback(), None),
            Err(_) => (None, false, None),
        },
    }
}

// ---------------------------------------------------------------------
// Worker lifecycle
// ---------------------------------------------------------------------

/// Everything a worker process needs besides the run description.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Registry address (`host:port`).
    pub registry: String,
    /// Run identifier shared by the whole cluster.
    pub run: String,
    /// This worker's slot.
    pub node: usize,
    /// Transport/registry no-progress deadline.
    pub io_deadline: Duration,
    /// Wall-clock duration of one virtual round for the delay shim; the
    /// shim engages only when the spec's latency is non-synchronous and
    /// this is nonzero.
    pub round_wall: Duration,
    /// Restart generation this worker runs as (0 on first launch). The
    /// registry fences anything below the highest incarnation it has
    /// admitted for the run.
    pub incarnation: u64,
    /// Interface the mesh listener binds (and advertises — it must be
    /// reachable by peers). `127.0.0.1` for single-host runs.
    pub bind: String,
    /// Retry policy for registry calls and mesh connects/handshakes.
    pub retry: RetryPolicy,
    /// Optional chaos campaign driving deterministic fault injection.
    pub chaos: Option<ChaosSpec>,
}

impl WorkerConfig {
    /// A localhost worker with default resilience knobs.
    pub fn localhost(registry: String, run: String, node: usize, io_deadline: Duration) -> Self {
        WorkerConfig {
            registry,
            run,
            node,
            io_deadline,
            round_wall: Duration::ZERO,
            incarnation: 0,
            bind: "127.0.0.1".to_string(),
            retry: RetryPolicy::default(),
            chaos: None,
        }
    }
}

/// Why a worker could not finish, sorted for the supervisor: a chaos
/// kill is charged to the victim's restart budget; collateral failures
/// (a vanished peer, an expired deadline or retry budget, a broken
/// registry exchange) restart the generation without blame; anything
/// else is a genuine bug and fails the run.
#[derive(Debug, Clone)]
pub enum WorkerFailure {
    /// A chaos kill rule fired at `phase`.
    Killed {
        /// The phase label (`"keydist"`, `"round:3"`, `"teardown"`).
        phase: String,
    },
    /// The transport failed during `phase`.
    Transport {
        /// Which lifecycle step broke.
        phase: &'static str,
        /// The typed transport failure.
        error: TransportError,
    },
    /// A registry exchange was refused (fencing, barrier expiry, bad
    /// request).
    Registry(String),
    /// Configuration or build errors — never retried.
    Other(String),
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerFailure::Killed { phase } => write!(f, "chaos kill at phase {phase}"),
            WorkerFailure::Transport { phase, error } => write!(f, "{phase}: {error}"),
            WorkerFailure::Registry(error) => write!(f, "registry: {error}"),
            WorkerFailure::Other(error) => f.write_str(error),
        }
    }
}

impl WorkerFailure {
    /// The process exit code the CLI maps this failure to:
    /// [`CHAOS_KILL_EXIT`] for kills (charged to the victim),
    /// [`COLLATERAL_EXIT`] for failures a restart can heal, and 1 for
    /// genuine bugs.
    pub fn exit_code(&self) -> i32 {
        match self {
            WorkerFailure::Killed { .. } => i32::from(CHAOS_KILL_EXIT),
            WorkerFailure::Registry(_) => i32::from(COLLATERAL_EXIT),
            WorkerFailure::Transport { error, .. } => match error {
                TransportError::Protocol { .. } | TransportError::WorkerPanic { .. } => 1,
                _ => i32::from(COLLATERAL_EXIT),
            },
            WorkerFailure::Other(_) => 1,
        }
    }
}

/// Run one worker end to end: register, key distribution over the mesh,
/// barrier, protocol phase over a fresh mesh, teardown with a
/// [`WorkerSummary`]. Every failure path returns a typed
/// [`WorkerFailure`] — the CLI maps it to the exit-code scheme the
/// supervisor classifies restarts by. Chaos injections (if configured)
/// are replayed to stderr as sorted `chaos[...]` trace lines on every
/// exit path, so two runs with the same seed can be compared
/// byte-for-byte.
pub fn run_worker(cfg: &WorkerConfig, builder: &SpecBuilder) -> Result<(), WorkerFailure> {
    let chaos = cfg
        .chaos
        .as_ref()
        .map(|spec| ChaosInjector::new(spec.clone(), cfg.node, cfg.incarnation));
    let retry = RetryCtx::new(
        cfg.retry,
        (cfg.node as u64) ^ cfg.incarnation.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let result = run_worker_inner(cfg, builder, chaos.as_ref(), &retry);
    if let Some(inj) = &chaos {
        // One write syscall per pre-formatted line: n workers share the
        // supervisor's stderr pipe, and only single-write lines under
        // PIPE_BUF are atomic — `eprintln!` may split one line across
        // several writes and tear against a sibling process.
        let stderr = std::io::stderr();
        let mut out = stderr.lock();
        for event in inj.trace() {
            let line = format!("chaos[node={} inc={}] {event}\n", cfg.node, cfg.incarnation);
            let _ = out.write_all(line.as_bytes());
        }
    }
    result
}

fn run_worker_inner(
    cfg: &WorkerConfig,
    builder: &SpecBuilder,
    chaos: Option<&ChaosInjector>,
    retry: &RetryCtx,
) -> Result<(), WorkerFailure> {
    let (cluster, spec) = builder.build().map_err(WorkerFailure::Other)?;
    if !cluster.link_latency.is_empty() {
        return Err(WorkerFailure::Other(
            "per-link latency overrides are not supported by lafd cluster".to_string(),
        ));
    }
    let n = cluster.n;
    if cfg.node >= n {
        return Err(WorkerFailure::Other(format!(
            "node {} out of range for n = {n}",
            cfg.node
        )));
    }
    let me = NodeId(cfg.node as u16);
    let bind_addr = format!("{}:0", cfg.bind);
    let listener = TcpListener::bind(&bind_addr).map_err(|e| WorkerFailure::Transport {
        phase: "bind",
        error: TransportError::Bind {
            node: me,
            addr: bind_addr.clone(),
            error: e.to_string(),
        },
    })?;
    let my_addr = listener
        .local_addr()
        .map_err(|e| WorkerFailure::Other(format!("listener address: {e}")))?;

    // Registration doubles as the barrier that opens the run: the reply
    // arrives once all n workers have announced themselves.
    let reply = registry_call_with(
        &cfg.registry,
        &RegistryRequest::Register {
            run: cfg.run.clone(),
            node: cfg.node,
            n,
            addr: my_addr.to_string(),
            incarnation: cfg.incarnation,
        },
        cfg.io_deadline,
        me,
        retry,
        chaos,
    )
    .map_err(registry_failure)?;
    let RegistryReply::Roster { peers } = reply else {
        return Err(WorkerFailure::Registry(format!(
            "unexpected registry reply to register: {reply:?}"
        )));
    };
    if peers.len() != n || peers.iter().enumerate().any(|(i, (slot, _))| *slot != i) {
        return Err(WorkerFailure::Registry(format!(
            "incomplete roster: {peers:?}"
        )));
    }
    let addrs = peers
        .iter()
        .map(|(slot, addr)| {
            addr.parse::<SocketAddr>()
                .map_err(|e| WorkerFailure::Registry(format!("roster addr for node {slot}: {e}")))
        })
        .collect::<Result<Vec<SocketAddr>, WorkerFailure>>()?;

    if let Some(inj) = chaos {
        if inj.should_kill(ChaosPhase::Keydist) {
            return Err(WorkerFailure::Killed {
                phase: ChaosPhase::Keydist.label(),
            });
        }
    }

    // Phase 1 — key distribution, always synchronous (paper §3), all
    // nodes honest (the adversary only enters the protocol phase, as in
    // `Cluster::run`).
    let mut store = None;
    let mut kd_anomalies = Vec::new();
    let mut kd_stats = NetStats::new(n);
    let mut keydist: Option<KeyDistReport> = None;
    if spec.protocol.needs_keys() {
        let rings: Vec<keys::Keyring> = (0..n).map(|i| cluster.keyring(NodeId(i as u16))).collect();
        let table = Arc::new(keys::PredicateTable::from_keys(
            rings.iter().map(|r| Arc::new(r.pk.clone())).collect(),
        ));
        let node = KeyDistNode::new(
            me,
            n,
            Arc::clone(&cluster.scheme),
            rings[cfg.node].clone(),
            cluster.seed,
        )
        .with_intern_table(Arc::clone(&table));
        let peers = MeshPeers::establish_with(me, &listener, &addrs, cfg.io_deadline, retry, chaos)
            .map_err(|e| WorkerFailure::Transport {
                phase: "keydist mesh",
                error: e,
            })?;
        let run: MeshRun = NonblockingMesh::new(KEYDIST_ROUNDS)
            .with_io_deadline(cfg.io_deadline)
            .run(Box::new(node), peers)
            .map_err(|e| WorkerFailure::Transport {
                phase: "keydist phase",
                error: e,
            })?;
        kd_stats = run.stats;
        kd_stats.rounds = run.rounds;
        let node = run
            .node
            .into_any()
            .downcast::<KeyDistNode>()
            .expect("keydist slot holds KeyDistNode");
        let (own_store, _ring, anoms) = node.into_parts();
        kd_anomalies = anoms;
        // A sparse report: only this worker's store exists in this
        // process. Adversary substitution only ever reads the corrupt
        // slot's own store, so this is sufficient.
        let mut stores: Vec<Option<keys::KeyStore>> = (0..n).map(|_| None).collect();
        stores[cfg.node] = Some(own_store.clone());
        store = Some(own_store);
        keydist = Some(KeyDistReport {
            stores,
            stats: kd_stats.clone(),
            anomalies: vec![(me, kd_anomalies.clone())],
            predicates: Some(table),
        });
    }

    // The inter-phase barrier: nobody re-meshes for the protocol phase
    // until everyone has finished tearing down the keydist mesh.
    registry_call_with(
        &cfg.registry,
        &RegistryRequest::Barrier {
            run: cfg.run.clone(),
            node: cfg.node,
            n,
            phase: "keydist-done".to_string(),
            incarnation: cfg.incarnation,
        },
        cfg.io_deadline,
        me,
        retry,
        chaos,
    )
    .map_err(registry_failure)?;

    // Phase 2 — the protocol, with the spec's adversary substitution for
    // this slot and an optional wall-clock delay shim on the links.
    let rounds = protocol_rounds(&cluster, &spec);
    let node = {
        let mut substitute = spec.adversary.substitution(&cluster, keydist.as_ref());
        match substitute(me) {
            Some(adversary) => adversary,
            None => honest_protocol_node(&cluster, &spec, me, store.as_ref()),
        }
    };
    let peers = MeshPeers::establish_with(me, &listener, &addrs, cfg.io_deadline, retry, chaos)
        .map_err(|e| WorkerFailure::Transport {
            phase: "protocol mesh",
            error: e,
        })?;
    let mut mesh = NonblockingMesh::new(rounds).with_io_deadline(cfg.io_deadline);
    if cluster.latency.normalize() != LatencySpec::Synchronous && !cfg.round_wall.is_zero() {
        mesh = mesh.with_delay_shim(DelayShim {
            model: cluster.latency.build(cluster.seed),
            round_wall: cfg.round_wall,
        });
    }
    if let Some(inj) = chaos {
        // `round:k` kills and frame stalls fire inside the protocol
        // phase — the mesh owns both.
        mesh = mesh.with_chaos(inj.clone());
    }
    let run: MeshRun = mesh.run(node, peers).map_err(|e| match e {
        TransportError::Killed { phase, .. } => WorkerFailure::Killed { phase },
        error => WorkerFailure::Transport {
            phase: "protocol phase",
            error,
        },
    })?;
    let (outcome, used_fallback, grade) = extract_slot(spec.protocol, run.node);

    let summary = WorkerSummary {
        node: cfg.node,
        outcome,
        used_fallback,
        grade,
        rounds: run.rounds,
        messages: run.stats.messages_total,
        bytes: run.stats.bytes_total,
        per_round: run.stats.per_round,
        dropped: run.stats.dropped_invalid,
        kd_rounds: kd_stats.rounds,
        kd_messages: kd_stats.messages_total,
        kd_bytes: kd_stats.bytes_total,
        kd_per_round: kd_stats.per_round,
        kd_anomalies: kd_anomalies.len(),
        incarnation: cfg.incarnation,
        retries: retry.retries(),
    };
    if let Some(inj) = chaos {
        if inj.should_kill(ChaosPhase::Teardown) {
            return Err(WorkerFailure::Killed {
                phase: ChaosPhase::Teardown.label(),
            });
        }
    }
    let reply = registry_call_with(
        &cfg.registry,
        &RegistryRequest::Teardown {
            run: cfg.run.clone(),
            node: cfg.node,
            summary,
            incarnation: cfg.incarnation,
        },
        cfg.io_deadline,
        me,
        retry,
        chaos,
    )
    .map_err(registry_failure)?;
    match reply {
        RegistryReply::Ack => Ok(()),
        other => Err(WorkerFailure::Registry(format!(
            "unexpected registry reply to teardown: {other:?}"
        ))),
    }
}

/// Map a typed registry-call failure into the worker taxonomy:
/// registry-level refusals keep their message; connection-level failures
/// (including exhausted retry budgets) stay typed transport errors.
fn registry_failure(error: TransportError) -> WorkerFailure {
    match error {
        TransportError::Protocol { detail, .. } => WorkerFailure::Registry(detail),
        error => WorkerFailure::Transport {
            phase: "registry",
            error,
        },
    }
}

// ---------------------------------------------------------------------
// Report assembly
// ---------------------------------------------------------------------

/// Key-distribution totals of a cluster run, aggregated across workers
/// (these live outside the [`FdRunReport`], mirroring how the setup
/// phase is reported in-process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTotals {
    /// Key-distribution rounds (0 for key-free protocols).
    pub kd_rounds: u32,
    /// Key-distribution messages across all workers.
    pub kd_messages: usize,
    /// Key-distribution bytes across all workers.
    pub kd_bytes: usize,
    /// Anomalies recorded across all workers.
    pub kd_anomalies: usize,
}

/// Fold the `n` worker summaries into the standard [`FdRunReport`] plus
/// the keydist totals. Errors on a missing/duplicate slot or on workers
/// disagreeing about the executed round count — either means the
/// transport broke, and the orchestrator must fail loudly.
pub fn assemble_report(
    protocol: Protocol,
    n: usize,
    summaries: &[WorkerSummary],
) -> Result<(FdRunReport, ClusterTotals), String> {
    let mut by_slot: Vec<Option<&WorkerSummary>> = vec![None; n];
    for summary in summaries {
        if summary.node >= n {
            return Err(format!("summary for out-of-range node {}", summary.node));
        }
        if by_slot[summary.node].replace(summary).is_some() {
            return Err(format!("duplicate summary for node {}", summary.node));
        }
    }
    let ordered = by_slot
        .iter()
        .enumerate()
        .map(|(slot, s)| s.ok_or_else(|| format!("no summary from node {slot}")))
        .collect::<Result<Vec<&WorkerSummary>, String>>()?;

    let rounds = ordered[0].rounds;
    let kd_rounds = ordered[0].kd_rounds;
    let mut stats = NetStats::new(n);
    stats.rounds = rounds;
    let mut totals = ClusterTotals {
        kd_rounds,
        kd_messages: 0,
        kd_bytes: 0,
        kd_anomalies: 0,
    };
    for summary in &ordered {
        if summary.rounds != rounds || summary.kd_rounds != kd_rounds {
            return Err(format!(
                "node {} disagrees on executed rounds ({}/{} vs {rounds}/{kd_rounds})",
                summary.node, summary.rounds, summary.kd_rounds
            ));
        }
        stats.messages_total += summary.messages;
        stats.bytes_total += summary.bytes;
        stats.dropped_invalid += summary.dropped;
        stats.sent_by[summary.node] = summary.messages;
        for (r, count) in summary.per_round.iter().enumerate() {
            if stats.per_round.len() <= r {
                stats.per_round.resize(r + 1, 0);
            }
            stats.per_round[r] += count;
        }
        totals.kd_messages += summary.kd_messages;
        totals.kd_bytes += summary.kd_bytes;
        totals.kd_anomalies += summary.kd_anomalies;
    }

    let report = FdRunReport {
        outcomes: ordered.iter().map(|s| s.outcome.clone()).collect(),
        stats,
        used_fallback: match protocol {
            Protocol::FdToBa => ordered.iter().map(|s| s.used_fallback).collect(),
            _ => Vec::new(),
        },
        grades: match protocol {
            Protocol::Degradable => ordered.iter().map(|s| s.grade).collect(),
            _ => Vec::new(),
        },
        delay_log: None,
        phases: None,
    };
    Ok((report, totals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn spawn_registry(wait_limit: Duration) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let registry = Registry::bind("127.0.0.1:0")
            .expect("bind registry")
            .with_wait_limit(wait_limit);
        let addr = registry.local_addr();
        let handle = std::thread::spawn(move || {
            let _ = registry.serve();
        });
        (addr, handle)
    }

    #[test]
    fn registry_roster_barrier_and_lookup() {
        let (addr, _handle) = spawn_registry(Duration::from_secs(10));
        let addr = addr.to_string();
        let n = 3;
        let mut joins = Vec::new();
        for node in 0..n {
            let addr = addr.clone();
            joins.push(std::thread::spawn(move || {
                registry_call(
                    &addr,
                    &RegistryRequest::Register {
                        run: "t0".to_string(),
                        node,
                        n,
                        addr: format!("127.0.0.1:{}", 7000 + node),
                        incarnation: 0,
                    },
                    Duration::from_secs(10),
                )
            }));
        }
        for join in joins {
            let reply = join.join().expect("register thread").expect("register ok");
            let RegistryReply::Roster { peers } = reply else {
                panic!("expected roster, got {reply:?}");
            };
            assert_eq!(peers.len(), n);
            assert_eq!(peers[1], (1, "127.0.0.1:7001".to_string()));
        }
        let looked = registry_call(
            &addr,
            &RegistryRequest::Lookup {
                run: "t0".to_string(),
                node: 2,
            },
            Duration::from_secs(10),
        )
        .expect("lookup ok");
        assert_eq!(
            looked,
            RegistryReply::Addr {
                node: 2,
                addr: "127.0.0.1:7002".to_string()
            }
        );
    }

    #[test]
    fn registry_barrier_times_out_loudly_when_a_worker_is_missing() {
        let (addr, _handle) = spawn_registry(Duration::from_millis(300));
        let err = registry_call(
            &addr.to_string(),
            &RegistryRequest::Barrier {
                run: "t1".to_string(),
                node: 0,
                n: 2,
                phase: "open".to_string(),
                incarnation: 0,
            },
            Duration::from_secs(10),
        )
        .expect_err("barrier must fail, not hang");
        assert!(err.contains("incomplete"), "unexpected error: {err}");
    }

    #[test]
    fn multiprocess_phases_reproduce_the_sync_report() {
        // Worker threads standing in for worker processes: identical
        // code path (run_worker) minus the re-exec.
        let (registry, _handle) = spawn_registry(Duration::from_secs(30));
        let registry = registry.to_string();
        let n = 4;
        let builder = SpecBuilder::new(Protocol::ChainFd, n)
            .with_seed(11)
            .with_input(b"v".to_vec());
        let mut joins = Vec::new();
        for node in 0..n {
            let registry = registry.clone();
            let builder = builder.clone();
            joins.push(std::thread::spawn(move || {
                run_worker(
                    &WorkerConfig::localhost(
                        registry,
                        "t2".to_string(),
                        node,
                        Duration::from_secs(30),
                    ),
                    &builder,
                )
            }));
        }
        for join in joins {
            join.join().expect("worker thread").expect("worker ok");
        }
        let reply = registry_call(
            &registry,
            &RegistryRequest::Collect {
                run: "t2".to_string(),
            },
            Duration::from_secs(10),
        )
        .expect("collect ok");
        let RegistryReply::Summaries { workers } = reply else {
            panic!("expected summaries, got {reply:?}");
        };
        let (report, totals) =
            assemble_report(Protocol::ChainFd, n, &workers).expect("assemble ok");

        let (cluster, spec) = builder.build().expect("build spec");
        let reference = cluster.run(&spec);
        assert_eq!(report.to_json(), reference.to_json());
        let kd = cluster.setup_keydist();
        assert_eq!(totals.kd_messages, kd.stats.messages_total);
        assert_eq!(totals.kd_bytes, kd.stats.bytes_total);
        assert_eq!(totals.kd_rounds, kd.stats.rounds);
    }

    #[test]
    fn stale_incarnations_are_fenced_and_newer_ones_reset_the_run() {
        let (addr, _handle) = spawn_registry(Duration::from_secs(10));
        let addr = addr.to_string();
        let register = |incarnation: u64, node: usize| {
            registry_call(
                &addr,
                &RegistryRequest::Register {
                    run: "fence".to_string(),
                    node,
                    n: 1,
                    addr: format!("127.0.0.1:{}", 7100 + node),
                    incarnation,
                },
                Duration::from_secs(10),
            )
        };
        // Generation 2 opens the run (n = 1, so registering completes).
        register(2, 0).expect("incarnation 2 admitted");
        // A stale incarnation is refused with a typed fencing error.
        let err = register(1, 0).expect_err("incarnation 1 must be fenced");
        assert!(err.contains("fenced"), "unexpected error: {err}");
        // A newer incarnation resets the roster: node 0 can re-register
        // at a different address without a clash.
        registry_call(
            &addr,
            &RegistryRequest::Register {
                run: "fence".to_string(),
                node: 0,
                n: 1,
                addr: "127.0.0.1:7999".to_string(),
                incarnation: 3,
            },
            Duration::from_secs(10),
        )
        .expect("incarnation 3 resets the roster");
        // And the stale incarnation's barrier is fenced too.
        let err = registry_call(
            &addr,
            &RegistryRequest::Barrier {
                run: "fence".to_string(),
                node: 0,
                n: 1,
                phase: "open".to_string(),
                incarnation: 2,
            },
            Duration::from_secs(10),
        )
        .expect_err("stale barrier must be fenced");
        assert!(err.contains("fenced"), "unexpected error: {err}");
    }

    #[test]
    fn teardown_is_idempotent_per_incarnation() {
        let (addr, _handle) = spawn_registry(Duration::from_secs(10));
        let addr = addr.to_string();
        let summary = WorkerSummary {
            node: 0,
            outcome: None,
            used_fallback: false,
            grade: None,
            rounds: 1,
            messages: 0,
            bytes: 0,
            per_round: vec![0],
            dropped: 0,
            kd_rounds: 0,
            kd_messages: 0,
            kd_bytes: 0,
            kd_per_round: Vec::new(),
            kd_anomalies: 0,
            incarnation: 1,
            retries: 4,
        };
        let deposit = || {
            registry_call(
                &addr,
                &RegistryRequest::Teardown {
                    run: "dup".to_string(),
                    node: 0,
                    summary: summary.clone(),
                    incarnation: 1,
                },
                Duration::from_secs(10),
            )
        };
        // A retried deposit (lost ack) lands in the same state.
        deposit().expect("first deposit");
        deposit().expect("retried deposit is idempotent");
        let reply = registry_call(
            &addr,
            &RegistryRequest::Collect {
                run: "dup".to_string(),
            },
            Duration::from_secs(10),
        )
        .expect("collect");
        let RegistryReply::Summaries { workers } = reply else {
            panic!("expected summaries, got {reply:?}");
        };
        assert_eq!(workers, vec![summary]);
    }
}
