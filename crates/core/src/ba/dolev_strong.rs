//! Dolev–Strong authenticated Byzantine Agreement under local
//! authentication.
//!
//! The classic algorithm: the sender signs and broadcasts its value; in
//! round `r` a node accepts a value carried by a chain of `r` distinct
//! signatures starting with the sender, adds its own signature, and relays
//! newly extracted values; after round `t + 1` a node decides the unique
//! extracted value, or the default if it extracted zero or several.
//!
//! Under **global** authentication this solves BA for any `t < n`. Under
//! the paper's **local** authentication the chain verification follows the
//! Theorem 4 discipline, so any assignment inconsistency caused by
//! equivocated keys is *discovered* — giving the protocol failure-discovery
//! semantics (the paper's §7 conjecture territory). Failure-free runs cost
//! `n(n−1)` messages, the quadratic contrast to the FD chain protocol's
//! `n − 1` (experiment T6).

use crate::chain::ChainMessage;
use crate::keys::{CohortKey, CohortVerdict, KeyStore, Keyring};
use crate::outcome::{DiscoveryReason, Outcome};
use fd_crypto::SignatureScheme;
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Wire message: a signature chain carrying a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsMsg {
    /// The chain-signed value.
    pub chain: ChainMessage,
}

const TAG_DS: u8 = 0x40;

impl Encode for DsMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TAG_DS);
        self.chain.encode(w);
    }
}

impl Decode for DsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_DS => Ok(DsMsg {
                chain: ChainMessage::decode(r)?,
            }),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Static parameters of a Dolev–Strong run.
#[derive(Debug, Clone)]
pub struct DolevStrongParams {
    /// System size.
    pub n: usize,
    /// Tolerated faults (any `t < n` under global authentication).
    pub t: usize,
    /// Designated sender.
    pub sender: NodeId,
    /// Decision when zero or multiple values are extracted.
    pub default_value: Vec<u8>,
}

impl DolevStrongParams {
    /// Standard parameters with `P_0` as sender.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2` and `t < n`.
    pub fn new(n: usize, t: usize, default_value: Vec<u8>) -> Self {
        assert!(n >= 2 && t < n, "need t < n and at least two nodes");
        DolevStrongParams {
            n,
            t,
            sender: NodeId(0),
            default_value,
        }
    }

    /// Automaton rounds: sends in rounds `0..=t`, decision at `t + 1`.
    pub fn rounds(&self) -> u32 {
        self.t as u32 + 2
    }
}

/// An accepted chain body on its way to extraction: the cohort fast path
/// hands out the shared body bytes, the per-message path already holds
/// the decoded chain.
enum Accepted {
    Shared(Arc<[u8]>),
    Owned(ChainMessage),
}

/// Honest Dolev–Strong participant.
pub struct DolevStrongNode {
    me: NodeId,
    params: DolevStrongParams,
    scheme: Arc<dyn SignatureScheme>,
    store: KeyStore,
    keyring: Keyring,
    value: Option<Vec<u8>>,
    /// Distinct extracted values, in extraction order.
    extracted: Vec<Vec<u8>>,
    discovered: Option<DiscoveryReason>,
    outcome: Outcome,
    done: bool,
}

impl DolevStrongNode {
    /// Create the automaton for node `me`; `value` is `Some` exactly on the
    /// sender.
    ///
    /// # Panics
    ///
    /// Panics if value presence contradicts the sender role.
    pub fn new(
        me: NodeId,
        params: DolevStrongParams,
        scheme: Arc<dyn SignatureScheme>,
        store: KeyStore,
        keyring: Keyring,
        value: Option<Vec<u8>>,
    ) -> Self {
        assert_eq!(
            me == params.sender,
            value.is_some(),
            "exactly the sender carries the initial value"
        );
        DolevStrongNode {
            me,
            params,
            scheme,
            store,
            keyring,
            value,
            extracted: Vec::new(),
            discovered: None,
            outcome: Outcome::Pending,
            done: false,
        }
    }

    /// The node's outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    /// Number of distinct extracted values (diagnostics).
    pub fn extracted_count(&self) -> usize {
        self.extracted.len()
    }

    /// Validate a received chain for round `r`: `r` distinct signers
    /// starting with the sender, and cryptographic validity per Theorem 4.
    fn validate(&mut self, env: &Envelope, r: u32) -> Option<ChainMessage> {
        let msg = match DsMsg::decode_exact(&env.payload) {
            Ok(m) => m,
            Err(_) => {
                self.discovered.get_or_insert(DiscoveryReason::Malformed);
                return None;
            }
        };
        let chain = msg.chain;
        if chain.origin != self.params.sender || chain.signature_count() != r as usize {
            self.discovered.get_or_insert(DiscoveryReason::BadStructure);
            return None;
        }
        let signers = chain.signer_sequence(env.from);
        if signers.contains(&self.me) {
            // An echo of a chain this node already signed (correct nodes
            // relay to everyone, including previous signers): ignore.
            return None;
        }
        let distinct: BTreeSet<NodeId> = signers.iter().copied().collect();
        if distinct.len() != signers.len() {
            self.discovered.get_or_insert(DiscoveryReason::BadStructure);
            return None;
        }
        match chain.verify_cached(self.scheme.as_ref(), &self.store, env.from) {
            Ok(_) => Some(chain),
            Err(reason) => {
                self.discovered.get_or_insert(reason);
                None
            }
        }
    }

    /// Apply a batched cohort verdict as *this* receiver: the per-receiver
    /// echo rule (a chain this node already signed is ignored) lives here,
    /// everything else mirrors [`DolevStrongNode::validate`] outcome for
    /// outcome. Returns the accepted body, if any.
    fn apply_verdict(&mut self, verdict: CohortVerdict) -> Option<Arc<[u8]>> {
        match verdict {
            CohortVerdict::Malformed => {
                self.discovered.get_or_insert(DiscoveryReason::Malformed);
                None
            }
            CohortVerdict::BadChain => {
                self.discovered.get_or_insert(DiscoveryReason::BadStructure);
                None
            }
            CohortVerdict::Duplicate { signers } => {
                if !signers.contains(&self.me) {
                    self.discovered.get_or_insert(DiscoveryReason::BadStructure);
                }
                None
            }
            CohortVerdict::Accept { signers, body } => {
                (!signers.contains(&self.me)).then_some(body)
            }
            CohortVerdict::Discovered { signers, reason } => {
                if !signers.contains(&self.me) {
                    self.discovered.get_or_insert(reason);
                }
                None
            }
        }
    }

    fn decide(&mut self) {
        self.outcome = if let Some(reason) = self.discovered.take() {
            Outcome::Discovered(reason)
        } else if self.extracted.len() == 1 {
            Outcome::Decided(self.extracted[0].clone())
        } else {
            // Zero or several extracted values: the sender is provably
            // faulty; agree on the default.
            Outcome::Decided(self.params.default_value.clone())
        };
        self.done = true;
    }
}

impl Node for DolevStrongNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done {
            // Under N1 every honest message lands by the decision round
            // (t + 1), so a later arrival proves a timing violation.
            // Recording it keeps a timing-starved default decision *loud*:
            // a schedule that delays every chain addressed to one node past
            // its horizon must not let it decide the default silently while
            // the rest decide the sender's value.
            if !inbox.is_empty() && !self.outcome.is_discovered() {
                self.outcome = Outcome::Discovered(DiscoveryReason::UnexpectedMessage { round });
            }
            return;
        }
        if round == 0 {
            if self.me == self.params.sender {
                let v = self.value.clone().expect("sender value");
                self.extracted.push(v.clone());
                let chain =
                    ChainMessage::originate(self.scheme.as_ref(), &self.keyring.sk, self.me, v)
                        .expect("own keyring well-formed");
                out.broadcast(self.params.n, self.me, DsMsg { chain }.encode_to_vec());
            }
            return;
        }
        // Rounds 1..=t+1: extract and (through round t) relay. With a
        // cohort-enabled cache the entire screening pipeline (decode,
        // structure checks, signer extraction, verification) runs once per
        // broadcast buffer and every other receiver replays the verdict;
        // without one, each message is validated individually. Outcomes
        // are identical either way — only the work is shared.
        let cohorts = self.store.cache().filter(|c| c.cohorts_enabled()).cloned();
        for env in inbox {
            let accepted: Option<Accepted> = match &cohorts {
                Some(cache) => {
                    let key: CohortKey = (env.payload.ident(), env.from, round);
                    let verdict = match cache.cohort_get(&key, &self.store) {
                        Some(v) => v,
                        None => {
                            let decoded = DsMsg::decode_exact(&env.payload).ok();
                            let v = CohortVerdict::judge(
                                self.scheme.as_ref(),
                                &self.store,
                                decoded.as_ref().map(|m| &m.chain),
                                env.from,
                                self.params.sender,
                                round as usize,
                            );
                            cache.cohort_put(key, &env.payload, &self.store, v.clone());
                            v
                        }
                    };
                    self.apply_verdict(verdict).map(Accepted::Shared)
                }
                None => self.validate(env, round).map(Accepted::Owned),
            };
            if let Some(acc) = accepted {
                let body: &[u8] = match &acc {
                    Accepted::Shared(b) => b,
                    Accepted::Owned(chain) => &chain.body,
                };
                if self.extracted.iter().any(|e| e.as_slice() == body) {
                    continue;
                }
                self.extracted.push(body.to_vec());
                if round <= self.params.t as u32 {
                    // Relaying needs the actual chain to extend. The
                    // cohort path re-decodes it here — at most once per
                    // distinct extracted value per node (≤ 2 per run),
                    // never per message.
                    let chain = match acc {
                        Accepted::Owned(chain) => chain,
                        Accepted::Shared(_) => {
                            DsMsg::decode_exact(&env.payload)
                                .expect("accepted payload decodes")
                                .chain
                        }
                    };
                    let extended = chain
                        .extend(self.scheme.as_ref(), &self.keyring.sk, env.from)
                        .expect("own keyring well-formed");
                    out.broadcast(
                        self.params.n,
                        self.me,
                        DsMsg { chain: extended }.encode_to_vec(),
                    );
                }
            }
        }
        if round == self.params.t as u32 + 1 {
            self.decide();
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for DolevStrongNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DolevStrongNode")
            .field("me", &self.me)
            .field("outcome", &self.outcome)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_simnet::SyncNetwork;

    fn build(n: usize, t: usize, value: &[u8]) -> Vec<Box<dyn Node>> {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(fd_crypto::SchnorrScheme::test_tiny());
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(scheme.as_ref(), NodeId(i as u16), 21))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(DolevStrongNode::new(
                    me,
                    DolevStrongParams::new(n, t, b"default".to_vec()),
                    Arc::clone(&scheme),
                    KeyStore::global(me, &pks),
                    rings[i].clone(),
                    (i == 0).then(|| value.to_vec()),
                )) as Box<dyn Node>
            })
            .collect()
    }

    fn outcomes(net: SyncNetwork) -> Vec<Outcome> {
        net.into_nodes()
            .into_iter()
            .map(|b| {
                b.into_any()
                    .downcast::<DolevStrongNode>()
                    .expect("DolevStrongNode")
                    .outcome
            })
            .collect()
    }

    #[test]
    fn failure_free_all_decide_sender_value() {
        for (n, t) in [(4usize, 1usize), (5, 2), (6, 3)] {
            let mut net = SyncNetwork::new(build(n, t, b"v"));
            net.run_until_done(DolevStrongParams::new(n, t, vec![]).rounds());
            // n-1 initial + (n-1) relays of the one new value per node.
            assert_eq!(net.stats().messages_total, n * (n - 1), "n={n} t={t}");
            for o in outcomes(net) {
                assert_eq!(o, Outcome::Decided(b"v".to_vec()));
            }
        }
    }

    #[test]
    fn silent_sender_decides_default() {
        let (n, t) = (4usize, 1usize);
        let mut nodes = build(n, t, b"v");
        nodes[0] = Box::new(crate::adversary::SilentNode { me: NodeId(0) });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(DolevStrongParams::new(n, t, b"default".to_vec()).rounds());
        let outs = outcomes_skip_sender(net);
        for o in outs {
            assert_eq!(o, Outcome::Decided(b"default".to_vec()));
        }
    }

    fn outcomes_skip_sender(net: SyncNetwork) -> Vec<Outcome> {
        net.into_nodes()
            .into_iter()
            .skip(1)
            .map(|b| {
                b.into_any()
                    .downcast::<DolevStrongNode>()
                    .expect("DolevStrongNode")
                    .outcome
            })
            .collect()
    }

    #[test]
    fn corrupted_relay_discovered() {
        let (n, t) = (4usize, 1usize);
        let mut net = SyncNetwork::new(build(n, t, b"v"));
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(2),
            fd_simnet::fault::LinkFault::Corrupt {
                offset: 15,
                mask: 0x10,
            },
        ));
        net.run_until_done(DolevStrongParams::new(n, t, vec![]).rounds());
        let outs = outcomes(net);
        assert!(outs[2].is_discovered());
    }

    #[test]
    fn post_decision_arrival_is_discovered_not_ignored() {
        use fd_simnet::fault::{FaultPlan, LinkFault};
        use fd_simnet::EventNetwork;
        let (n, t) = (4usize, 1usize);
        let mut net = EventNetwork::new(build(n, t, b"v"));
        // Hold the sender's round-0 chain to P2 back three whole rounds:
        // it lands after P2's decision at round t + 1 = 2. P2 still
        // extracts `v` via the round-1 relays, but the late arrival is a
        // provable N1 violation and must be surfaced, not ignored — an
        // adversarial schedule that starved P2 of *all* chains would
        // otherwise let it decide the default silently.
        net.set_fault_plan(FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(2),
            LinkFault::Delay { rounds: 3 },
        ));
        net.run_until_done(8);
        let outs: Vec<Outcome> = net
            .into_nodes()
            .into_iter()
            .map(|b| {
                b.into_any()
                    .downcast::<DolevStrongNode>()
                    .expect("DolevStrongNode")
                    .outcome
            })
            .collect();
        assert!(outs[2].is_discovered(), "late arrival ignored: {outs:?}");
        for (i, o) in outs.iter().enumerate() {
            if i != 2 {
                assert_eq!(*o, Outcome::Decided(b"v".to_vec()), "P{i}");
            }
        }
    }

    #[test]
    fn codec_round_trip() {
        let scheme = fd_crypto::SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(0), 1);
        let chain = ChainMessage::originate(&scheme, &ring.sk, NodeId(0), b"x".to_vec()).unwrap();
        let msg = DsMsg { chain };
        assert_eq!(DsMsg::decode_exact(&msg.encode_to_vec()).unwrap(), msg);
    }

    #[test]
    #[should_panic(expected = "t < n")]
    fn t_must_be_below_n() {
        let _ = DolevStrongParams::new(3, 3, vec![]);
    }
}
