//! Phase-King Byzantine Agreement (Berman–Garay–Perry).
//!
//! The second non-authenticated baseline, complementing [`super::EigNode`]:
//! where EIG gathers `O(n^{t+1})` tree values, Phase King runs `t + 1`
//! phases of two broadcast rounds each and carries only *constant-size*
//! per-message state, for `O(t·n²)` messages total. The price is a tighter
//! resilience bound: **`n > 4t`** (EIG needs `n > 3t`).
//!
//! Adapted to the broadcast (designated-sender) problem the paper studies:
//! round 0 the sender broadcasts its value and every node adopts what it
//! received (default if nothing); then `t + 1` phases of
//!
//! 1. **universal exchange** — everyone broadcasts its current value and
//!    tallies the votes (own vote included);
//! 2. **king round** — the phase king broadcasts its plurality value; a
//!    node keeps its own plurality only if it had a strong majority
//!    (`count > n/2 + t`), otherwise it adopts the king's value.
//!
//! With `n > 4t` and at most `t` faults there is at least one correct king
//! among the `t + 1`, after whose phase all correct nodes hold the same
//! value and the strong-majority test keeps them locked ever after.
//!
//! Like the other full-agreement baselines this protocol always *decides*
//! (it never discovers failures) — it exists to put a message-complexity
//! number next to the authenticated protocols in experiment T7.

use crate::outcome::Outcome;
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::collections::HashMap;

/// Wire message of the Phase-King protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PkMsg {
    /// Round-0 sender value.
    Initial(Vec<u8>),
    /// Universal-exchange vote.
    Vote(Vec<u8>),
    /// King's plurality value for the current phase.
    King(Vec<u8>),
}

const TAG_PK_INITIAL: u8 = 0x60;
const TAG_PK_VOTE: u8 = 0x61;
const TAG_PK_KING: u8 = 0x62;

impl Encode for PkMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            PkMsg::Initial(v) => {
                w.put_u8(TAG_PK_INITIAL);
                w.put_bytes(v);
            }
            PkMsg::Vote(v) => {
                w.put_u8(TAG_PK_VOTE);
                w.put_bytes(v);
            }
            PkMsg::King(v) => {
                w.put_u8(TAG_PK_KING);
                w.put_bytes(v);
            }
        }
    }
}

impl Decode for PkMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_PK_INITIAL => Ok(PkMsg::Initial(r.get_bytes()?.to_vec())),
            TAG_PK_VOTE => Ok(PkMsg::Vote(r.get_bytes()?.to_vec())),
            TAG_PK_KING => Ok(PkMsg::King(r.get_bytes()?.to_vec())),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Static parameters of a Phase-King run.
#[derive(Debug, Clone)]
pub struct PhaseKingParams {
    /// System size.
    pub n: usize,
    /// Tolerated faults; Phase King requires `n > 4t`.
    pub t: usize,
    /// Designated sender.
    pub sender: NodeId,
    /// Default for missing values.
    pub default_value: Vec<u8>,
}

impl PhaseKingParams {
    /// Standard parameters with `P_0` as sender; the king of phase `p` is
    /// node `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 4t` and `n >= 2`.
    pub fn new(n: usize, t: usize, default_value: Vec<u8>) -> Self {
        assert!(n > 4 * t, "Phase King requires n > 4t");
        assert!(n >= 2, "need at least two nodes");
        PhaseKingParams {
            n,
            t,
            sender: NodeId(0),
            default_value,
        }
    }

    /// The king of phase `p` (kings are nodes `0..=t`, one of which is
    /// correct since at most `t` are faulty).
    pub fn king(&self, phase: usize) -> NodeId {
        NodeId(phase as u16)
    }

    /// Automaton rounds: the initial broadcast, then `t + 1` phases of two
    /// rounds, then the decision round.
    pub fn rounds(&self) -> u32 {
        2 * (self.t as u32 + 1) + 2
    }

    /// Failure-free message count:
    /// `(n−1) + (t+1)·(n·(n−1) + (n−1))` — initial broadcast, then per
    /// phase a universal exchange plus the king broadcast.
    pub fn failure_free_messages(&self) -> usize {
        let n = self.n;
        (n - 1) + (self.t + 1) * (n * (n - 1) + (n - 1))
    }
}

/// Honest Phase-King participant.
pub struct PhaseKingNode {
    me: NodeId,
    params: PhaseKingParams,
    value: Option<Vec<u8>>,
    /// Current working value (the consensus variable).
    cur: Vec<u8>,
    /// Plurality value and its multiplicity from the last exchange.
    plurality: (Vec<u8>, usize),
    outcome: Outcome,
    done: bool,
}

impl PhaseKingNode {
    /// Create the automaton for node `me`; `value` is `Some` exactly on the
    /// sender.
    ///
    /// # Panics
    ///
    /// Panics if value presence contradicts the sender role.
    pub fn new(me: NodeId, params: PhaseKingParams, value: Option<Vec<u8>>) -> Self {
        assert_eq!(
            me == params.sender,
            value.is_some(),
            "exactly the sender carries the initial value"
        );
        let cur = params.default_value.clone();
        PhaseKingNode {
            me,
            params,
            value,
            cur,
            plurality: (Vec::new(), 0),
            outcome: Outcome::Pending,
            done: false,
        }
    }

    /// The node's outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    /// Tally one vote per distinct peer (first message wins) plus this
    /// node's own vote; the plurality winner breaks ties toward the
    /// lexicographically smallest value so every correct node computes the
    /// same plurality from the same multiset.
    fn tally(&mut self, inbox: &[Envelope]) {
        let mut votes: HashMap<NodeId, Vec<u8>> = HashMap::new();
        votes.insert(self.me, self.cur.clone());
        for env in inbox {
            if let Ok(PkMsg::Vote(v)) = PkMsg::decode_exact(&env.payload) {
                votes.entry(env.from).or_insert(v);
            }
        }
        let mut counts: HashMap<&[u8], usize> = HashMap::new();
        for v in votes.values() {
            *counts.entry(v.as_slice()).or_insert(0) += 1;
        }
        let best = counts
            .into_iter()
            .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
            .expect("own vote always present");
        self.plurality = (best.0.to_vec(), best.1);
    }

    /// Apply the king rule for `phase` using the king's broadcast (if any).
    fn apply_king(&mut self, phase: usize, inbox: &[Envelope]) {
        let king = self.params.king(phase);
        let king_value = if king == self.me {
            Some(self.plurality.0.clone())
        } else {
            inbox.iter().find_map(|env| {
                (env.from == king)
                    .then(|| PkMsg::decode_exact(&env.payload).ok())
                    .flatten()
                    .and_then(|m| match m {
                        PkMsg::King(v) => Some(v),
                        _ => None,
                    })
            })
        };
        // Strong majority: > n/2 + t own-plurality votes ⇒ immune to the
        // king; otherwise adopt the king's value (default if king silent).
        if self.plurality.1 > self.params.n / 2 + self.params.t {
            self.cur = self.plurality.0.clone();
        } else {
            self.cur = king_value.unwrap_or_else(|| self.params.default_value.clone());
        }
    }
}

impl Node for PhaseKingNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done {
            return;
        }
        let n = self.params.n;
        if round == 0 {
            if self.me == self.params.sender {
                let v = self.value.clone().expect("sender value");
                self.cur = v.clone();
                out.broadcast(n, self.me, PkMsg::Initial(v).encode_to_vec());
            }
            return;
        }
        if round == 1 {
            // Adopt the sender's value (default if silent/malformed), then
            // open phase 0 with a vote.
            if self.me != self.params.sender {
                if let Some(v) = inbox.iter().find_map(|env| {
                    (env.from == self.params.sender)
                        .then(|| PkMsg::decode_exact(&env.payload).ok())
                        .flatten()
                        .and_then(|m| match m {
                            PkMsg::Initial(v) => Some(v),
                            _ => None,
                        })
                }) {
                    self.cur = v;
                }
            }
            out.broadcast(n, self.me, PkMsg::Vote(self.cur.clone()).encode_to_vec());
            return;
        }
        // Rounds 2p+2: tally phase p's exchange; the king announces.
        // Rounds 2p+3: apply the king rule; vote for phase p+1 or decide.
        let phase = ((round - 2) / 2) as usize;
        if round.is_multiple_of(2) {
            self.tally(inbox);
            if self.params.king(phase) == self.me {
                out.broadcast(
                    n,
                    self.me,
                    PkMsg::King(self.plurality.0.clone()).encode_to_vec(),
                );
            }
        } else {
            self.apply_king(phase, inbox);
            if phase < self.params.t {
                out.broadcast(n, self.me, PkMsg::Vote(self.cur.clone()).encode_to_vec());
            } else {
                self.outcome = Outcome::Decided(self.cur.clone());
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for PhaseKingNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PhaseKingNode")
            .field("me", &self.me)
            .field("outcome", &self.outcome)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_simnet::SyncNetwork;

    fn build(n: usize, t: usize, value: &[u8]) -> Vec<Box<dyn Node>> {
        (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(PhaseKingNode::new(
                    me,
                    PhaseKingParams::new(n, t, b"default".to_vec()),
                    (i == 0).then(|| value.to_vec()),
                )) as Box<dyn Node>
            })
            .collect()
    }

    fn outcomes(net: SyncNetwork, skip: usize) -> Vec<Outcome> {
        net.into_nodes()
            .into_iter()
            .skip(skip)
            .filter_map(|b| {
                b.into_any()
                    .downcast::<PhaseKingNode>()
                    .ok()
                    .map(|n| n.outcome)
            })
            .collect()
    }

    #[test]
    fn failure_free_decides_sender_value_with_predicted_messages() {
        for (n, t) in [(5usize, 1usize), (9, 2), (13, 3)] {
            let params = PhaseKingParams::new(n, t, b"default".to_vec());
            let mut net = SyncNetwork::new(build(n, t, b"v"));
            net.run_until_done(params.rounds());
            assert_eq!(
                net.stats().messages_total,
                params.failure_free_messages(),
                "n={n} t={t}"
            );
            for o in outcomes(net, 0) {
                assert_eq!(o, Outcome::Decided(b"v".to_vec()), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn silent_sender_decides_default() {
        let (n, t) = (5usize, 1usize);
        let mut nodes = build(n, t, b"v");
        nodes[0] = Box::new(crate::adversary::SilentNode { me: NodeId(0) });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(PhaseKingParams::new(n, t, b"default".to_vec()).rounds());
        for o in outcomes(net, 1) {
            assert_eq!(o, Outcome::Decided(b"default".to_vec()));
        }
    }

    #[test]
    fn noise_node_cannot_split_agreement() {
        let (n, t) = (5usize, 1usize);
        for noisy in 1..n {
            let mut nodes = build(n, t, b"v");
            nodes[noisy] = Box::new(crate::adversary::NoiseNode::new(
                NodeId(noisy as u16),
                n,
                3,
                4,
                24,
                8,
            ));
            let mut net = SyncNetwork::new(nodes);
            net.run_until_done(PhaseKingParams::new(n, t, b"default".to_vec()).rounds());
            let outs: Vec<Outcome> = net
                .into_nodes()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| *i != noisy)
                .filter_map(|(_, b)| {
                    b.into_any()
                        .downcast::<PhaseKingNode>()
                        .ok()
                        .map(|n| n.outcome)
                })
                .collect();
            for o in outs {
                assert_eq!(o, Outcome::Decided(b"v".to_vec()), "noisy={noisy}");
            }
        }
    }

    #[test]
    fn ties_break_identically_everywhere() {
        // Two values with equal support: all correct nodes must pick the
        // same plurality (lexicographically smallest) and so agree.
        let (n, t) = (5usize, 1usize);
        let params = PhaseKingParams::new(n, t, b"default".to_vec());
        let mut node = PhaseKingNode::new(NodeId(1), params, None);
        node.cur = b"bbb".to_vec();
        let envs: Vec<Envelope> = [(0u16, b"aaa"), (2, b"aaa"), (3, b"bbb"), (4, b"ccc")]
            .into_iter()
            .map(|(from, v)| Envelope {
                from: NodeId(from),
                to: NodeId(1),
                round: 2,
                payload: PkMsg::Vote(v.to_vec()).encode_to_vec().into(),
            })
            .collect();
        node.tally(&envs);
        // aaa:2, bbb:2, ccc:1 → tie between aaa/bbb broken toward "aaa".
        assert_eq!(node.plurality, (b"aaa".to_vec(), 2));
    }

    #[test]
    fn duplicate_votes_from_one_peer_count_once() {
        let params = PhaseKingParams::new(5, 1, b"d".to_vec());
        let mut node = PhaseKingNode::new(NodeId(1), params, None);
        node.cur = b"x".to_vec();
        let mk = |v: &[u8]| Envelope {
            from: NodeId(2),
            to: NodeId(1),
            round: 2,
            payload: PkMsg::Vote(v.to_vec()).encode_to_vec().into(),
        };
        node.tally(&[mk(b"y"), mk(b"y"), mk(b"y")]);
        // One vote for y (peer 2), one for x (self): tie → "x" vs "y" →
        // lexicographically smallest is "x".
        assert_eq!(node.plurality, (b"x".to_vec(), 1));
    }

    #[test]
    fn codec_round_trip() {
        for msg in [
            PkMsg::Initial(b"a".to_vec()),
            PkMsg::Vote(vec![]),
            PkMsg::King(b"long value".to_vec()),
        ] {
            assert_eq!(PkMsg::decode_exact(&msg.encode_to_vec()).unwrap(), msg);
        }
    }

    #[test]
    fn rounds_formula() {
        assert_eq!(PhaseKingParams::new(5, 1, vec![]).rounds(), 6);
        assert_eq!(PhaseKingParams::new(9, 2, vec![]).rounds(), 8);
    }

    #[test]
    #[should_panic(expected = "n > 4t")]
    fn resilience_bound_enforced() {
        let _ = PhaseKingParams::new(8, 2, vec![]);
    }
}
