//! The FD→BA extension: Byzantine Agreement whose failure-free runs cost
//! exactly the failure-discovery protocol's messages (paper §4).
//!
//! Three phases:
//!
//! 1. **FD phase** (rounds `0..=t+1`): the chain FD protocol (paper
//!    Fig. 2) runs verbatim; each node obtains a *provisional* outcome.
//! 2. **Alarm phase** (rounds `t+2..=2t+3`): a node whose provisional
//!    outcome is a discovery originates a signed ALARM; alarms are relayed
//!    Dolev–Strong style (a chain accepted at relative round `k` needs `k`
//!    distinct signatures), which guarantees **all-or-none**: either every
//!    correct node has accepted an alarm by round `2t+4`, or none has.
//!    Failure-free runs send nothing here.
//! 3. **Fallback phase** (rounds `2t+4..=3t+5`): if an alarm was accepted
//!    (or raised), all correct nodes jointly run EIG agreement on the
//!    sender's (re-broadcast) value; otherwise each node finalizes its
//!    provisional FD decision.
//!
//! Correctness sketch: if no correct node enters fallback, then no correct
//! node discovered (discovery ⇒ own alarm ⇒ own fallback), so FD's F2/F3
//! give agreement and validity on the provisional values. If any correct
//! node enters fallback, the all-or-none alarm agreement puts *every*
//! correct node into fallback, and EIG (which requires `n > 3t`) decides.
//! A correct sender re-broadcasts its original value, so validity carries
//! through the fallback as well.
//!
//! Cost: failure-free runs send `n − 1` messages — the FD protocol's exact
//! cost (experiment T6); faulty runs pay `O(n²)` alarms plus the EIG
//! fallback, which is the regime where any BA protocol pays anyway.

use crate::ba::eig::{EigNode, EigParams};
use crate::chain::ChainMessage;
use crate::fd::{ChainFdNode, ChainFdParams};
use crate::keys::{KeyStore, Keyring};
use crate::outcome::Outcome;
use fd_crypto::SignatureScheme;
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Alarm wire message: a chain-signed "ALARM" marker.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AlarmMsg {
    chain: ChainMessage,
}

const TAG_ALARM: u8 = 0x60;
const ALARM_BODY: &[u8] = b"ALARM";

impl Encode for AlarmMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TAG_ALARM);
        self.chain.encode(w);
    }
}

impl Decode for AlarmMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_ALARM => Ok(AlarmMsg {
                chain: ChainMessage::decode(r)?,
            }),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Static parameters of the FD→BA extension.
#[derive(Debug, Clone)]
pub struct FdToBaParams {
    /// System size.
    pub n: usize,
    /// Tolerated faults; the fallback requires `n > 3t`.
    pub t: usize,
    /// Designated sender.
    pub sender: NodeId,
    /// Default decision for the fallback.
    pub default_value: Vec<u8>,
}

impl FdToBaParams {
    /// Standard parameters with `P_0` as sender.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` (fallback requirement) and `t + 2 <= n`.
    pub fn new(n: usize, t: usize, default_value: Vec<u8>) -> Self {
        assert!(n > 3 * t, "the EIG fallback requires n > 3t");
        assert!(t + 2 <= n, "chain FD needs t + 2 <= n");
        FdToBaParams {
            n,
            t,
            sender: NodeId(0),
            default_value,
        }
    }

    fn t32(&self) -> u32 {
        self.t as u32
    }

    /// First round of the alarm phase.
    fn alarm_start(&self) -> u32 {
        self.t32() + 2
    }

    /// Round at which fallback entry is decided (and EIG starts).
    fn fallback_start(&self) -> u32 {
        2 * self.t32() + 4
    }

    /// Total automaton rounds: `3t + 6`.
    pub fn rounds(&self) -> u32 {
        3 * self.t32() + 6
    }
}

/// A node running the FD→BA extension.
pub struct FdToBaNode {
    me: NodeId,
    params: FdToBaParams,
    scheme: Arc<dyn SignatureScheme>,
    store: KeyStore,
    keyring: Keyring,
    value: Option<Vec<u8>>,
    inner_fd: ChainFdNode,
    alarm_seen: bool,
    alarm_relayed: bool,
    eig: Option<EigNode>,
    outcome: Outcome,
    done: bool,
    /// Alarm messages observed (diagnostics).
    alarms_accepted: usize,
}

impl FdToBaNode {
    /// Create the automaton for node `me`; `value` is `Some` exactly on the
    /// sender.
    pub fn new(
        me: NodeId,
        params: FdToBaParams,
        scheme: Arc<dyn SignatureScheme>,
        store: KeyStore,
        keyring: Keyring,
        value: Option<Vec<u8>>,
    ) -> Self {
        let inner_fd = ChainFdNode::new(
            me,
            ChainFdParams::new(params.n, params.t),
            Arc::clone(&scheme),
            store.clone(),
            keyring.clone(),
            value.clone(),
        );
        FdToBaNode {
            me,
            params,
            scheme,
            store,
            keyring,
            value,
            inner_fd,
            alarm_seen: false,
            alarm_relayed: false,
            eig: None,
            outcome: Outcome::Pending,
            done: false,
            alarms_accepted: 0,
        }
    }

    /// The node's final outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    /// Whether this node took the fallback path (diagnostics).
    pub fn used_fallback(&self) -> bool {
        self.eig.is_some()
    }

    /// Validate an alarm delivered at absolute round `round`; returns the
    /// chain when acceptable.
    fn validate_alarm(&self, env: &Envelope, round: u32) -> Option<ChainMessage> {
        let first_delivery = self.params.alarm_start() + 1;
        let last_delivery = 2 * self.params.t32() + 3;
        if round < first_delivery || round > last_delivery {
            return None;
        }
        let msg = AlarmMsg::decode_exact(&env.payload).ok()?;
        let chain = msg.chain;
        if chain.body != ALARM_BODY {
            return None;
        }
        // DS threshold: delivered at alarm_start + k needs >= k signers.
        let k = (round - self.params.alarm_start()) as usize;
        if chain.signature_count() < k {
            return None;
        }
        let signers = chain.signer_sequence(env.from);
        let distinct: BTreeSet<NodeId> = signers.iter().copied().collect();
        if distinct.len() != signers.len() {
            return None;
        }
        chain
            .verify_cached(self.scheme.as_ref(), &self.store, env.from)
            .ok()?;
        Some(chain)
    }

    fn handle_alarm_phase(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        // Originate own alarm at the start of the phase.
        if round == self.params.alarm_start()
            && self.inner_fd.outcome().is_discovered()
            && !self.alarm_relayed
        {
            let chain = ChainMessage::originate(
                self.scheme.as_ref(),
                &self.keyring.sk,
                self.me,
                ALARM_BODY.to_vec(),
            )
            .expect("own keyring well-formed");
            out.broadcast(self.params.n, self.me, AlarmMsg { chain }.encode_to_vec());
            self.alarm_seen = true;
            self.alarm_relayed = true;
        }
        // Accept and relay alarms.
        let envs: Vec<Envelope> = inbox.to_vec();
        for env in &envs {
            if let Some(chain) = self.validate_alarm(env, round) {
                self.alarms_accepted += 1;
                self.alarm_seen = true;
                // Relay once, while a relay can still arrive in the window.
                if !self.alarm_relayed && round <= 2 * self.params.t32() + 2 {
                    let extended = chain
                        .extend(self.scheme.as_ref(), &self.keyring.sk, env.from)
                        .expect("own keyring well-formed");
                    out.broadcast(
                        self.params.n,
                        self.me,
                        AlarmMsg { chain: extended }.encode_to_vec(),
                    );
                    self.alarm_relayed = true;
                }
            }
        }
    }

    /// Split an inbox by protocol tag.
    fn split_inbox(inbox: &[Envelope]) -> (Vec<Envelope>, Vec<Envelope>, Vec<Envelope>) {
        let mut fd = Vec::new();
        let mut alarm = Vec::new();
        let mut eig = Vec::new();
        for env in inbox {
            match env.payload.first() {
                Some(&TAG_ALARM) => alarm.push(env.clone()),
                Some(&0x50) => eig.push(env.clone()),
                _ => fd.push(env.clone()),
            }
        }
        (fd, alarm, eig)
    }
}

impl Node for FdToBaNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done {
            return;
        }
        let (fd_msgs, alarm_msgs, eig_msgs) = Self::split_inbox(inbox);

        // Phase 1: FD protocol.
        if round <= self.params.t32() + 1 {
            self.inner_fd.on_round(round, &fd_msgs, out);
        }

        // Phase 2: alarms.
        if round >= self.params.alarm_start() && round < self.params.fallback_start() {
            self.handle_alarm_phase(round, &alarm_msgs, out);
        }

        // Phase 3 entry.
        if round == self.params.fallback_start() {
            if self.alarm_seen {
                self.eig = Some(EigNode::new(
                    self.me,
                    EigParams {
                        n: self.params.n,
                        t: self.params.t,
                        sender: self.params.sender,
                        default_value: self.params.default_value.clone(),
                        base_round: self.params.fallback_start(),
                    },
                    self.value.clone(),
                ));
            } else {
                // Finalize the provisional FD decision. By the all-or-none
                // alarm argument, every correct node takes this branch
                // together, and no correct node discovered.
                self.outcome = match self.inner_fd.outcome() {
                    Outcome::Decided(v) => Outcome::Decided(v.clone()),
                    // Unreachable for a correct node (discovery implies
                    // alarm implies fallback); defensive default:
                    _ => Outcome::Decided(self.params.default_value.clone()),
                };
                self.done = true;
                return;
            }
        }

        // Phase 3: EIG fallback.
        if let Some(eig) = self.eig.as_mut() {
            eig.on_round(round, &eig_msgs, out);
            if eig.is_done() {
                self.outcome = eig.outcome().clone();
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for FdToBaNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FdToBaNode")
            .field("me", &self.me)
            .field("outcome", &self.outcome)
            .field("fallback", &self.used_fallback())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_simnet::SyncNetwork;

    fn build(n: usize, t: usize, value: &[u8]) -> Vec<Box<dyn Node>> {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(fd_crypto::SchnorrScheme::test_tiny());
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(scheme.as_ref(), NodeId(i as u16), 33))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(FdToBaNode::new(
                    me,
                    FdToBaParams::new(n, t, b"default".to_vec()),
                    Arc::clone(&scheme),
                    KeyStore::global(me, &pks),
                    rings[i].clone(),
                    (i == 0).then(|| value.to_vec()),
                )) as Box<dyn Node>
            })
            .collect()
    }

    fn run(nodes: Vec<Box<dyn Node>>, n: usize, t: usize) -> (Vec<(Outcome, bool)>, usize) {
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(FdToBaParams::new(n, t, vec![]).rounds());
        let messages = net.stats().messages_total;
        let outs = net
            .into_nodes()
            .into_iter()
            .map(|b| {
                let node = b.into_any().downcast::<FdToBaNode>().expect("FdToBaNode");
                (node.outcome.clone(), node.used_fallback())
            })
            .collect();
        (outs, messages)
    }

    #[test]
    fn failure_free_costs_exactly_fd_messages() {
        for (n, t) in [(4usize, 1usize), (7, 2), (5, 1)] {
            let (outs, messages) = run(build(n, t, b"v"), n, t);
            assert_eq!(messages, n - 1, "n={n} t={t}: FD-cost failure-free runs");
            for (o, fellback) in outs {
                assert_eq!(o, Outcome::Decided(b"v".to_vec()));
                assert!(!fellback);
            }
        }
    }

    #[test]
    fn dropped_chain_triggers_uniform_fallback_and_agreement() {
        let (n, t) = (7usize, 2usize);
        let nodes = build(n, t, b"v");
        let mut net = SyncNetwork::new(nodes);
        // Break the FD chain: P1's relay to P2 is dropped.
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            1,
            NodeId(1),
            NodeId(2),
            fd_simnet::fault::LinkFault::Drop,
        ));
        net.run_until_done(FdToBaParams::new(n, t, vec![]).rounds());
        let results: Vec<(Outcome, bool)> = net
            .into_nodes()
            .into_iter()
            .map(|b| {
                let node = b.into_any().downcast::<FdToBaNode>().expect("FdToBaNode");
                (node.outcome.clone(), node.used_fallback())
            })
            .collect();
        // All correct nodes enter fallback together and agree; the sender
        // is correct so validity demands its value.
        for (i, (o, fellback)) in results.iter().enumerate() {
            assert!(fellback, "node {i} must take the fallback");
            assert_eq!(*o, Outcome::Decided(b"v".to_vec()), "node {i}");
        }
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn fallback_requires_n_over_3t() {
        let _ = FdToBaParams::new(6, 2, vec![]);
    }
}
