//! Exponential Information Gathering (EIG) Byzantine Agreement.
//!
//! The iterative formulation of the classic OM(t) algorithm of Lamport,
//! Shostak & Pease (the paper's reference [4]): `t + 1` rounds of relaying
//! build a tree of "who said who said …" values; decision is a recursive
//! majority over the tree. Requires `n > 3t`. No signatures — this is the
//! non-authenticated baseline *and* the fall-back engine of
//! [`super::FdToBaNode`].
//!
//! Message complexity is `O(n^{t+1})` values in `O(n²·t)` envelopes —
//! exactly the kind of cost the paper's authenticated approach avoids in
//! failure-free runs.

use crate::outcome::Outcome;
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::collections::HashMap;

/// Wire message: a batch of `(path, value)` tree entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EigMsg {
    /// Entries: the path identifies the tree node (sequence of relayers,
    /// starting at the sender), the value is what the last relayer claims.
    pub entries: Vec<(Vec<NodeId>, Vec<u8>)>,
}

const TAG_EIG: u8 = 0x50;

impl Encode for EigMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TAG_EIG);
        w.put_u32(self.entries.len() as u32);
        for (path, value) in &self.entries {
            w.put_u16(path.len() as u16);
            for id in path {
                id.encode(w);
            }
            w.put_bytes(value);
        }
    }
}

impl Decode for EigMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_EIG => {
                let count = r.get_u32()? as usize;
                if count > r.remaining() {
                    return Err(CodecError::BadLength);
                }
                let mut entries = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let plen = r.get_u16()? as usize;
                    let mut path = Vec::with_capacity(plen.min(64));
                    for _ in 0..plen {
                        path.push(NodeId::decode(r)?);
                    }
                    entries.push((path, r.get_bytes()?.to_vec()));
                }
                Ok(EigMsg { entries })
            }
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Static parameters of an EIG run.
#[derive(Debug, Clone)]
pub struct EigParams {
    /// System size.
    pub n: usize,
    /// Tolerated faults; EIG requires `n > 3t`.
    pub t: usize,
    /// Designated sender.
    pub sender: NodeId,
    /// Default for missing values and ties.
    pub default_value: Vec<u8>,
    /// First automaton round of the protocol (0 standalone; later when
    /// embedded as the [`super::FdToBaNode`] fall-back).
    pub base_round: u32,
}

impl EigParams {
    /// Standalone parameters with `P_0` as sender.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t`.
    pub fn new(n: usize, t: usize, default_value: Vec<u8>) -> Self {
        assert!(n > 3 * t, "EIG requires n > 3t");
        EigParams {
            n,
            t,
            sender: NodeId(0),
            default_value,
            base_round: 0,
        }
    }

    /// Automaton rounds: sends in relative rounds `0..=t`, decision at
    /// `t + 1`.
    pub fn rounds(&self) -> u32 {
        self.base_round + self.t as u32 + 2
    }
}

/// Honest EIG participant.
pub struct EigNode {
    me: NodeId,
    params: EigParams,
    value: Option<Vec<u8>>,
    /// The information-gathering tree: path → claimed value.
    vals: HashMap<Vec<NodeId>, Vec<u8>>,
    outcome: Outcome,
    done: bool,
}

impl EigNode {
    /// Create the automaton for node `me`; `value` is `Some` exactly on the
    /// sender.
    ///
    /// # Panics
    ///
    /// Panics if value presence contradicts the sender role.
    pub fn new(me: NodeId, params: EigParams, value: Option<Vec<u8>>) -> Self {
        assert_eq!(
            me == params.sender,
            value.is_some(),
            "exactly the sender carries the initial value"
        );
        EigNode {
            me,
            params,
            value,
            vals: HashMap::new(),
            outcome: Outcome::Pending,
            done: false,
        }
    }

    /// The node's outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    fn ingest(&mut self, env: &Envelope, level: usize) {
        let Ok(msg) = EigMsg::decode_exact(&env.payload) else {
            return; // garbage from a faulty node: contributes nothing
        };
        for (path, value) in msg.entries {
            // Structural validity: correct level, starts at the sender,
            // distinct hops, relayer not already inside, and the relayer is
            // the actual immediate sender (N2 supplies the final hop).
            let rooted = if path.is_empty() {
                // Level 0: the sender's own broadcast.
                env.from == self.params.sender
            } else {
                path.first() == Some(&self.params.sender)
            };
            if path.len() != level || !rooted || path.contains(&env.from) {
                continue;
            }
            let mut distinct = path.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() != path.len() {
                continue;
            }
            let mut full = path;
            full.push(env.from);
            self.vals.entry(full).or_insert(value);
        }
    }

    /// Recursive majority resolution of the tree.
    fn resolve(&self, path: &[NodeId]) -> Vec<u8> {
        if path.len() == self.params.t + 1 {
            return self
                .vals
                .get(path)
                .cloned()
                .unwrap_or_else(|| self.params.default_value.clone());
        }
        let mut counts: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut children = 0usize;
        for j in fd_simnet::NodeId::all(self.params.n) {
            if path.contains(&j) || j == self.me {
                continue;
            }
            let mut child = path.to_vec();
            child.push(j);
            *counts.entry(self.resolve(&child)).or_insert(0) += 1;
            children += 1;
        }
        // Own view of this tree node counts too.
        if let Some(v) = self.vals.get(path) {
            *counts.entry(v.clone()).or_insert(0) += 1;
            children += 1;
        }
        let _ = children;
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(v, _)| v)
            .unwrap_or_else(|| self.params.default_value.clone())
    }
}

impl Node for EigNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done || round < self.params.base_round {
            return;
        }
        let rel = round - self.params.base_round;
        let t = self.params.t as u32;

        // Ingest deliveries: messages sent in relative round rel-1 carry
        // level rel-1 paths (before the relayer hop).
        if rel >= 1 && rel <= t + 1 {
            let envs: Vec<Envelope> = inbox.to_vec();
            for env in &envs {
                self.ingest(env, rel as usize - 1);
            }
        }

        // Send phase.
        if rel == 0 {
            if self.me == self.params.sender {
                let v = self.value.clone().expect("sender value");
                self.vals.insert(vec![self.me], v.clone());
                let msg = EigMsg {
                    entries: vec![(vec![], v)],
                };
                out.broadcast(self.params.n, self.me, msg.encode_to_vec());
            }
        } else if rel <= t {
            // Relay all level-`rel` paths not containing me.
            let entries: Vec<(Vec<NodeId>, Vec<u8>)> = self
                .vals
                .iter()
                .filter(|(path, _)| path.len() == rel as usize && !path.contains(&self.me))
                .map(|(path, value)| (path.clone(), value.clone()))
                .collect();
            if !entries.is_empty() {
                let mut entries = entries;
                entries.sort(); // deterministic wire order
                let msg = EigMsg { entries };
                out.broadcast(self.params.n, self.me, msg.encode_to_vec());
            }
        }

        if rel == t + 1 {
            self.outcome = Outcome::Decided(self.resolve(&[self.params.sender]));
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for EigNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EigNode")
            .field("me", &self.me)
            .field("tree", &self.vals.len())
            .field("outcome", &self.outcome)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_simnet::SyncNetwork;

    fn build(n: usize, t: usize, value: &[u8]) -> Vec<Box<dyn Node>> {
        (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(EigNode::new(
                    me,
                    EigParams::new(n, t, b"default".to_vec()),
                    (i == 0).then(|| value.to_vec()),
                )) as Box<dyn Node>
            })
            .collect()
    }

    fn outcomes(net: SyncNetwork, skip: usize) -> Vec<Outcome> {
        net.into_nodes()
            .into_iter()
            .skip(skip)
            .map(|b| b.into_any().downcast::<EigNode>().expect("EigNode").outcome)
            .collect()
    }

    #[test]
    fn failure_free_agreement_and_validity() {
        for (n, t) in [(4usize, 1usize), (7, 2)] {
            let mut net = SyncNetwork::new(build(n, t, b"v"));
            net.run_until_done(EigParams::new(n, t, vec![]).rounds());
            for o in outcomes(net, 0) {
                assert_eq!(o, Outcome::Decided(b"v".to_vec()), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn silent_sender_agreement_on_default() {
        let (n, t) = (4usize, 1usize);
        let mut nodes = build(n, t, b"v");
        nodes[0] = Box::new(crate::adversary::SilentNode { me: NodeId(0) });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(EigParams::new(n, t, b"default".to_vec()).rounds());
        for o in outcomes(net, 1) {
            assert_eq!(o, Outcome::Decided(b"default".to_vec()));
        }
    }

    #[test]
    fn equivocating_sender_still_agreement() {
        // Faulty sender gives different values; with n=4, t=1 the correct
        // nodes must still agree (classic OM(1) property).
        struct TwoFaced {
            me: NodeId,
            n: usize,
        }
        impl Node for TwoFaced {
            fn id(&self) -> NodeId {
                self.me
            }
            fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
                if round == 0 {
                    for j in 1..self.n {
                        let v = if j % 2 == 0 {
                            b"a".to_vec()
                        } else {
                            b"b".to_vec()
                        };
                        let msg = EigMsg {
                            entries: vec![(vec![], v)],
                        };
                        out.send(NodeId(j as u16), msg.encode_to_vec());
                    }
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        let (n, t) = (4usize, 1usize);
        let mut nodes = build(n, t, b"v");
        nodes[0] = Box::new(TwoFaced { me: NodeId(0), n });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(EigParams::new(n, t, b"default".to_vec()).rounds());
        let outs = outcomes(net, 1);
        let first = outs[0].decided().unwrap().to_vec();
        for o in &outs {
            assert_eq!(o.decided().unwrap(), &first[..], "agreement violated");
        }
    }

    #[test]
    fn codec_round_trip() {
        let msg = EigMsg {
            entries: vec![
                (vec![NodeId(0)], b"x".to_vec()),
                (vec![NodeId(0), NodeId(2)], b"y".to_vec()),
            ],
        };
        assert_eq!(EigMsg::decode_exact(&msg.encode_to_vec()).unwrap(), msg);
        assert!(EigMsg::decode_exact(&[0x51]).is_err());
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn requires_n_over_3t() {
        let _ = EigParams::new(6, 2, vec![]);
    }
}
