//! Byzantine Agreement on top of Failure Discovery (paper §4, §7).
//!
//! Hadzilacos–Halpern show (and the paper leans on) that an FD protocol can
//! be extended to full Byzantine Agreement such that **failure-free runs
//! cost exactly the FD protocol's messages**. This module provides:
//!
//! * [`FdToBaNode`] — that extension: run the chain FD protocol; discovered
//!   failures raise *alarms* that are themselves agreed on Dolev–Strong
//!   style (all-or-none), and an alarm triggers a fall-back to full EIG
//!   agreement. Failure-free runs send `n − 1` messages total
//!   (experiment T6).
//! * [`DolevStrongNode`] — the classic authenticated BA protocol, run here
//!   under *local* authentication with the Theorem 4 verification
//!   discipline; its `O(n²)` failure-free cost is the contrast to FD.
//! * [`EigNode`] — exponential-information-gathering BA (the OM(t)
//!   algorithm in its iterative formulation): the non-authenticated
//!   baseline, requires `n > 3t`.
//! * [`PhaseKingNode`] — the Berman–Garay–Perry Phase-King algorithm: the
//!   second non-authenticated baseline, `O(t·n²)` constant-size messages,
//!   requires `n > 4t`.
//! * [`DegradableNode`] — degradable (crusader/graded) agreement under
//!   local authentication, the weaker agreement flavor the paper's §7
//!   points to (its ref \[7\]): constant 2 communication rounds, decisions
//!   carry a [`Grade`].

mod degradable;
mod dolev_strong;
mod eig;
mod fd_to_ba;
mod phase_king;

pub use degradable::{DegradableNode, DegradableParams, DgMsg, Grade};
pub use dolev_strong::{DolevStrongNode, DolevStrongParams, DsMsg};
pub use eig::{EigMsg, EigNode, EigParams};
pub use fd_to_ba::{FdToBaNode, FdToBaParams};
pub use phase_king::{PhaseKingNode, PhaseKingParams, PkMsg};
