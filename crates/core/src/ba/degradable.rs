//! Degradable agreement under local authentication (paper §7).
//!
//! The paper's closing section hopes for "improvements in … the parameters
//! of weaker types of agreement, e.g. Degradable Agreement" (its ref [7],
//! Vaidya & Pradhan). This module instantiates the weakest interesting
//! member of that family — an authenticated *crusader/graded* agreement —
//! under **local** authentication:
//!
//! * round 0 — the sender chain-signs its value and broadcasts it;
//! * round 1 — every node that received a valid direct value extends the
//!   chain with its own signature layer and broadcasts the echo;
//! * round 2 — decision from the tally of valid echoes.
//!
//! Decision rule at a correct node (with `c(v)` the number of distinct
//! nodes — sender included — vouching for `v` with valid signatures):
//!
//! * evidence of **two distinct validly-signed values** is proof of sender
//!   equivocation ⇒ decide the default (grade 0);
//! * otherwise decide the unique value `v` with **grade 2** if
//!   `c(v) ≥ n − t`, **grade 1** if `c(v) ≥ n − 2t`, default (grade 0)
//!   below that.
//!
//! Guarantees for `n > 3t`, at most `t` byzantine nodes (proof sketches in
//! [`DegradableNode`]):
//!
//! * **validity** — a correct sender's value is decided by every correct
//!   node, with grade 2;
//! * **degraded agreement** — correct nodes decide at most **two** distinct
//!   values, and if two, one of them is the default (Vaidya–Pradhan's
//!   degradation notion);
//! * **discovery** — exactly as in Theorem 4, every local-authentication
//!   anomaly (bad signature, name mismatch, unknown signer) is discovered,
//!   never silent.
//!
//! The point of the experiment (T7): this buys a **constant 2 communication
//! rounds** (vs `t + 1` for full agreement) at `n·(n−1)` messages — the
//! trade the paper's reference [7] calls *degradable*: full agreement is
//! degraded, latency and resilience bookkeeping are not.

use crate::chain::ChainMessage;
use crate::keys::{KeyStore, Keyring};
use crate::outcome::{DiscoveryReason, Outcome};
use fd_crypto::SignatureScheme;
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Wire message: the sender's chain (1 signature) or an echo (2 signatures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DgMsg {
    /// The chain-signed value.
    pub chain: ChainMessage,
}

const TAG_DG: u8 = 0x68;

impl Encode for DgMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TAG_DG);
        self.chain.encode(w);
    }
}

impl Decode for DgMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_DG => Ok(DgMsg {
                chain: ChainMessage::decode(r)?,
            }),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// The confidence grade attached to a degradable-agreement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Grade {
    /// No (or conflicting) support — the default value was decided.
    Zero,
    /// Support from at least `n − 2t` nodes.
    One,
    /// Support from at least `n − t` nodes — guaranteed when the sender is
    /// correct and at most `t` nodes are faulty.
    Two,
}

/// Static parameters of a degradable-agreement run.
#[derive(Debug, Clone)]
pub struct DegradableParams {
    /// System size.
    pub n: usize,
    /// Tolerated faults; degraded agreement needs `n > 3t`.
    pub t: usize,
    /// Designated sender.
    pub sender: NodeId,
    /// Grade-0 decision value.
    pub default_value: Vec<u8>,
}

impl DegradableParams {
    /// Standard parameters with `P_0` as sender.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` and `n >= 2`.
    pub fn new(n: usize, t: usize, default_value: Vec<u8>) -> Self {
        assert!(n > 3 * t, "degradable agreement requires n > 3t");
        assert!(n >= 2, "need at least two nodes");
        DegradableParams {
            n,
            t,
            sender: NodeId(0),
            default_value,
        }
    }

    /// Automaton rounds: send, echo, decide — constant, independent of `t`.
    pub fn rounds(&self) -> u32 {
        3
    }

    /// Failure-free message count: `(n−1)` direct + `(n−1)²` echoes.
    pub fn failure_free_messages(&self) -> usize {
        (self.n - 1) * self.n
    }
}

/// Honest degradable-agreement participant.
pub struct DegradableNode {
    me: NodeId,
    params: DegradableParams,
    scheme: Arc<dyn SignatureScheme>,
    store: KeyStore,
    keyring: Keyring,
    value: Option<Vec<u8>>,
    /// The verified direct chain received from the sender, if any.
    direct: Option<ChainMessage>,
    /// Distinct values with valid support, in first-seen order, with the
    /// set of vouching nodes.
    support: Vec<(Vec<u8>, BTreeSet<NodeId>)>,
    discovered: Option<DiscoveryReason>,
    outcome: Outcome,
    grade: Option<Grade>,
    done: bool,
}

impl DegradableNode {
    /// Create the automaton for node `me`; `value` is `Some` exactly on the
    /// sender.
    ///
    /// # Panics
    ///
    /// Panics if value presence contradicts the sender role.
    pub fn new(
        me: NodeId,
        params: DegradableParams,
        scheme: Arc<dyn SignatureScheme>,
        store: KeyStore,
        keyring: Keyring,
        value: Option<Vec<u8>>,
    ) -> Self {
        assert_eq!(
            me == params.sender,
            value.is_some(),
            "exactly the sender carries the initial value"
        );
        DegradableNode {
            me,
            params,
            scheme,
            store,
            keyring,
            value,
            direct: None,
            support: Vec::new(),
            discovered: None,
            outcome: Outcome::Pending,
            grade: None,
            done: false,
        }
    }

    /// The node's outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    /// The decision grade, once decided.
    pub fn grade(&self) -> Option<Grade> {
        self.grade
    }

    /// `true` if this node holds signed evidence of sender equivocation
    /// (two distinct values, both validly sender-signed).
    pub fn equivocation_proof(&self) -> bool {
        self.support.len() >= 2
    }

    /// Record that `voucher` vouches for `value` with a valid chain.
    fn add_support(&mut self, value: Vec<u8>, voucher: NodeId) {
        match self.support.iter_mut().find(|(v, _)| *v == value) {
            Some((_, set)) => {
                set.insert(voucher);
            }
            None => {
                let mut set = BTreeSet::new();
                set.insert(voucher);
                self.support.push((value, set));
            }
        }
    }

    /// Validate a round-1 direct message from the sender.
    fn take_direct(&mut self, env: &Envelope) {
        if env.from != self.params.sender {
            self.discovered
                .get_or_insert(DiscoveryReason::UnexpectedMessage { round: env.round });
            return;
        }
        let msg = match DgMsg::decode_exact(&env.payload) {
            Ok(m) => m,
            Err(_) => {
                self.discovered.get_or_insert(DiscoveryReason::Malformed);
                return;
            }
        };
        if msg.chain.origin != self.params.sender || msg.chain.signature_count() != 1 {
            self.discovered.get_or_insert(DiscoveryReason::BadStructure);
            return;
        }
        match msg
            .chain
            .verify_cached(self.scheme.as_ref(), &self.store, env.from)
        {
            Ok(_) => {
                self.add_support(msg.chain.body.clone(), self.params.sender);
                self.direct = Some(msg.chain);
            }
            Err(reason) => {
                self.discovered.get_or_insert(reason);
            }
        }
    }

    /// Validate a round-2 echo: sender-originated chain with exactly one
    /// extra layer signed by the echoing node.
    fn take_echo(&mut self, env: &Envelope) {
        let msg = match DgMsg::decode_exact(&env.payload) {
            Ok(m) => m,
            Err(_) => {
                self.discovered.get_or_insert(DiscoveryReason::Malformed);
                return;
            }
        };
        let chain = msg.chain;
        if chain.origin != self.params.sender
            || chain.signature_count() != 2
            || env.from == self.params.sender
        {
            self.discovered.get_or_insert(DiscoveryReason::BadStructure);
            return;
        }
        match chain.verify_cached(self.scheme.as_ref(), &self.store, env.from) {
            Ok(assignee) => {
                self.add_support(chain.body.clone(), self.params.sender);
                self.add_support(chain.body, assignee);
            }
            Err(reason) => {
                self.discovered.get_or_insert(reason);
            }
        }
    }

    fn decide(&mut self) {
        if let Some(reason) = self.discovered.take() {
            self.outcome = Outcome::Discovered(reason);
            self.grade = Some(Grade::Zero);
            self.done = true;
            return;
        }
        let (value, grade) = match self.support.len() {
            // Silent sender: grade-0 default (matching the other agreement
            // baselines; a silent sender is indistinguishable from a slow
            // one only in asynchrony, which N1 rules out).
            0 => (self.params.default_value.clone(), Grade::Zero),
            1 => {
                let (v, set) = &self.support[0];
                let c = set.len();
                if c >= self.params.n - self.params.t {
                    (v.clone(), Grade::Two)
                } else if c + 2 * self.params.t >= self.params.n {
                    (v.clone(), Grade::One)
                } else {
                    (self.params.default_value.clone(), Grade::Zero)
                }
            }
            // Proof of equivocation: the sender signed two values.
            _ => (self.params.default_value.clone(), Grade::Zero),
        };
        self.outcome = Outcome::Decided(value);
        self.grade = Some(grade);
        self.done = true;
    }
}

impl Node for DegradableNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done {
            return;
        }
        match round {
            0 => {
                if self.me == self.params.sender {
                    let v = self.value.clone().expect("sender value");
                    self.add_support(v.clone(), self.me);
                    let chain =
                        ChainMessage::originate(self.scheme.as_ref(), &self.keyring.sk, self.me, v)
                            .expect("own keyring well-formed");
                    out.broadcast(
                        self.params.n,
                        self.me,
                        DgMsg {
                            chain: chain.clone(),
                        }
                        .encode_to_vec(),
                    );
                    self.direct = Some(chain);
                }
            }
            1 => {
                if self.me != self.params.sender {
                    let envs: Vec<Envelope> = inbox.to_vec();
                    for env in &envs {
                        self.take_direct(env);
                    }
                    if let Some(direct_chain) = self.direct.clone() {
                        // Count our own echo: it is broadcast to everyone
                        // else but not delivered to ourselves.
                        self.add_support(direct_chain.body.clone(), self.me);
                        let echo = direct_chain
                            .extend(self.scheme.as_ref(), &self.keyring.sk, self.params.sender)
                            .expect("own keyring well-formed");
                        out.broadcast(
                            self.params.n,
                            self.me,
                            DgMsg { chain: echo }.encode_to_vec(),
                        );
                    }
                }
            }
            _ => {
                let envs: Vec<Envelope> = inbox.to_vec();
                for env in &envs {
                    self.take_echo(env);
                }
                self.decide();
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for DegradableNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DegradableNode")
            .field("me", &self.me)
            .field("outcome", &self.outcome)
            .field("grade", &self.grade)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_simnet::SyncNetwork;

    fn fixtures(n: usize) -> (Arc<dyn SignatureScheme>, Vec<Keyring>, Vec<KeyStore>) {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(fd_crypto::SchnorrScheme::test_tiny());
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(scheme.as_ref(), NodeId(i as u16), 31))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        let stores = (0..n)
            .map(|i| KeyStore::global(NodeId(i as u16), &pks))
            .collect();
        (scheme, rings, stores)
    }

    fn honest(
        i: usize,
        n: usize,
        t: usize,
        scheme: &Arc<dyn SignatureScheme>,
        rings: &[Keyring],
        stores: &[KeyStore],
        value: Option<Vec<u8>>,
    ) -> Box<dyn Node> {
        let me = NodeId(i as u16);
        Box::new(DegradableNode::new(
            me,
            DegradableParams::new(n, t, b"default".to_vec()),
            Arc::clone(scheme),
            stores[i].clone(),
            rings[i].clone(),
            value,
        ))
    }

    fn results(net: SyncNetwork, faulty: &[usize]) -> Vec<(Outcome, Option<Grade>)> {
        net.into_nodes()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !faulty.contains(i))
            .map(|(_, b)| {
                let node = b
                    .into_any()
                    .downcast::<DegradableNode>()
                    .expect("DegradableNode");
                (node.outcome.clone(), node.grade)
            })
            .collect()
    }

    #[test]
    fn failure_free_grade_two_everywhere() {
        for (n, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
            let (scheme, rings, stores) = fixtures(n);
            let params = DegradableParams::new(n, t, b"default".to_vec());
            let nodes: Vec<Box<dyn Node>> = (0..n)
                .map(|i| {
                    honest(
                        i,
                        n,
                        t,
                        &scheme,
                        &rings,
                        &stores,
                        (i == 0).then(|| b"v".to_vec()),
                    )
                })
                .collect();
            let mut net = SyncNetwork::new(nodes);
            net.run_until_done(params.rounds());
            assert_eq!(
                net.stats().messages_total,
                params.failure_free_messages(),
                "n={n}"
            );
            for (o, g) in results(net, &[]) {
                assert_eq!(o, Outcome::Decided(b"v".to_vec()));
                assert_eq!(g, Some(Grade::Two));
            }
        }
    }

    #[test]
    fn silent_sender_grade_zero_default() {
        let (n, t) = (4usize, 1usize);
        let (scheme, rings, stores) = fixtures(n);
        let mut nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                honest(
                    i,
                    n,
                    t,
                    &scheme,
                    &rings,
                    &stores,
                    (i == 0).then(|| b"v".to_vec()),
                )
            })
            .collect();
        nodes[0] = Box::new(crate::adversary::SilentNode { me: NodeId(0) });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(3);
        for (o, g) in results(net, &[0]) {
            assert_eq!(o, Outcome::Decided(b"default".to_vec()));
            assert_eq!(g, Some(Grade::Zero));
        }
    }

    /// A sender that signs `v` for one half of the nodes and `w` for the
    /// other half — the canonical equivocation attack.
    struct EquivocatingSender {
        ring: Keyring,
        scheme: Arc<dyn SignatureScheme>,
        n: usize,
    }

    impl Node for EquivocatingSender {
        fn id(&self) -> NodeId {
            self.ring.me
        }
        fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
            if round != 0 {
                return;
            }
            for i in 1..self.n {
                let v = if i <= self.n / 2 {
                    b"v".to_vec()
                } else {
                    b"w".to_vec()
                };
                let chain =
                    ChainMessage::originate(self.scheme.as_ref(), &self.ring.sk, self.ring.me, v)
                        .unwrap();
                out.send(NodeId(i as u16), DgMsg { chain }.encode_to_vec());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn equivocating_sender_all_default_with_proof() {
        // Both halves echo their value to everyone, so every correct node
        // ends with sender-signed evidence of two values and defaults.
        let (n, t) = (7usize, 2usize);
        let (scheme, rings, stores) = fixtures(n);
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                if i == 0 {
                    Box::new(EquivocatingSender {
                        ring: rings[0].clone(),
                        scheme: Arc::clone(&scheme),
                        n,
                    }) as Box<dyn Node>
                } else {
                    honest(i, n, t, &scheme, &rings, &stores, None)
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(3);
        let mut decisions = std::collections::BTreeSet::new();
        for (o, g) in results(net, &[0]) {
            match o {
                Outcome::Decided(v) => {
                    decisions.insert(v);
                }
                other => panic!("expected decision, got {other:?}"),
            }
            assert_eq!(g, Some(Grade::Zero));
        }
        assert_eq!(decisions.len(), 1);
        assert!(decisions.iter().any(|d| d == b"default"));
    }

    /// A sender that sends its (validly signed) value to only `k` of the
    /// other nodes and stays silent toward the rest.
    struct PartialSender {
        ring: Keyring,
        scheme: Arc<dyn SignatureScheme>,
        recipients: Vec<NodeId>,
    }

    impl Node for PartialSender {
        fn id(&self) -> NodeId {
            self.ring.me
        }
        fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
            if round != 0 {
                return;
            }
            let chain = ChainMessage::originate(
                self.scheme.as_ref(),
                &self.ring.sk,
                self.ring.me,
                b"v".to_vec(),
            )
            .unwrap();
            for &to in &self.recipients {
                out.send(
                    to,
                    DgMsg {
                        chain: chain.clone(),
                    }
                    .encode_to_vec(),
                );
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    #[test]
    fn partial_sender_degrades_to_at_most_two_values_one_default() {
        // Sweep every possible recipient-set size: correct nodes must end
        // with decisions from {v, default} only (degraded agreement).
        let (n, t) = (7usize, 2usize);
        for k in 0..n {
            let (scheme, rings, stores) = fixtures(n);
            let nodes: Vec<Box<dyn Node>> = (0..n)
                .map(|i| {
                    if i == 0 {
                        Box::new(PartialSender {
                            ring: rings[0].clone(),
                            scheme: Arc::clone(&scheme),
                            recipients: (1..=k).map(|i| NodeId(i as u16)).collect(),
                        }) as Box<dyn Node>
                    } else {
                        honest(i, n, t, &scheme, &rings, &stores, None)
                    }
                })
                .collect();
            let mut net = SyncNetwork::new(nodes);
            net.run_until_done(3);
            let mut non_default = std::collections::BTreeSet::new();
            for (o, _) in results(net, &[0]) {
                match o {
                    Outcome::Decided(v) => {
                        if v != b"default".to_vec() {
                            non_default.insert(v);
                        }
                    }
                    other => panic!("k={k}: expected decision, got {other:?}"),
                }
            }
            assert!(non_default.len() <= 1, "k={k}: {non_default:?}");
            // With all n-1 recipients reached, everyone supports v fully.
            if k == n - 1 {
                assert_eq!(non_default.len(), 1);
            }
        }
    }

    #[test]
    fn grade_thresholds() {
        // n = 7, t = 2: grade 2 needs c >= 5, grade 1 needs c >= 3.
        let (n, t) = (7usize, 2usize);
        let (scheme, rings, stores) = fixtures(n);
        // k = 4 recipients: supporters of v at a recipient are
        // {sender, self, 3 other echoers} = 5 -> grade 2 at recipients;
        // non-recipients see {sender, 4 echoers} = 5 -> also grade 2.
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                if i == 0 {
                    Box::new(PartialSender {
                        ring: rings[0].clone(),
                        scheme: Arc::clone(&scheme),
                        recipients: (1..=4).map(|i| NodeId(i as u16)).collect(),
                    }) as Box<dyn Node>
                } else {
                    honest(i, n, t, &scheme, &rings, &stores, None)
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(3);
        for (o, g) in results(net, &[0]) {
            assert_eq!(o, Outcome::Decided(b"v".to_vec()));
            assert_eq!(g, Some(Grade::Two));
        }

        // k = 2 recipients: c = 3 everywhere -> grade 1.
        let (scheme, rings, stores) = fixtures(n);
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                if i == 0 {
                    Box::new(PartialSender {
                        ring: rings[0].clone(),
                        scheme: Arc::clone(&scheme),
                        recipients: (1..=2).map(|i| NodeId(i as u16)).collect(),
                    }) as Box<dyn Node>
                } else {
                    honest(i, n, t, &scheme, &rings, &stores, None)
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(3);
        for (o, g) in results(net, &[0]) {
            assert_eq!(o, Outcome::Decided(b"v".to_vec()));
            assert_eq!(g, Some(Grade::One));
        }

        // k = 1 recipient: c = 2 < 3 -> grade 0 default.
        let (scheme, rings, stores) = fixtures(n);
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                if i == 0 {
                    Box::new(PartialSender {
                        ring: rings[0].clone(),
                        scheme: Arc::clone(&scheme),
                        recipients: vec![NodeId(1)],
                    }) as Box<dyn Node>
                } else {
                    honest(i, n, t, &scheme, &rings, &stores, None)
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(3);
        for (o, g) in results(net, &[0]) {
            assert_eq!(o, Outcome::Decided(b"default".to_vec()));
            assert_eq!(g, Some(Grade::Zero));
        }
    }

    #[test]
    fn forged_echo_discovered() {
        // Node 1 echoes a value the sender never signed (signs the inner
        // layer with its own key instead): every verifier discovers.
        let (n, t) = (4usize, 1usize);
        let (scheme, rings, stores) = fixtures(n);

        struct ForgingEchoer {
            ring: Keyring,
            scheme: Arc<dyn SignatureScheme>,
            n: usize,
        }
        impl Node for ForgingEchoer {
            fn id(&self) -> NodeId {
                self.ring.me
            }
            fn on_round(&mut self, round: u32, _inbox: &[Envelope], out: &mut Outbox) {
                if round != 1 {
                    return;
                }
                // Forge: originate "w" as if from P0, but signed by us.
                let forged = ChainMessage::originate(
                    self.scheme.as_ref(),
                    &self.ring.sk,
                    NodeId(0),
                    b"w".to_vec(),
                )
                .unwrap()
                .extend(self.scheme.as_ref(), &self.ring.sk, NodeId(0))
                .unwrap();
                out.broadcast(
                    self.n,
                    self.ring.me,
                    DgMsg { chain: forged }.encode_to_vec(),
                );
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }

        let mut nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                honest(
                    i,
                    n,
                    t,
                    &scheme,
                    &rings,
                    &stores,
                    (i == 0).then(|| b"v".to_vec()),
                )
            })
            .collect();
        nodes[1] = Box::new(ForgingEchoer {
            ring: rings[1].clone(),
            scheme: Arc::clone(&scheme),
            n,
        });
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(3);
        for (o, _) in results(net, &[1]) {
            assert!(o.is_discovered(), "forged echo must be discovered: {o:?}");
        }
    }

    #[test]
    fn codec_round_trip() {
        let scheme = fd_crypto::SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(0), 1);
        let chain = ChainMessage::originate(&scheme, &ring.sk, NodeId(0), b"x".to_vec()).unwrap();
        let msg = DgMsg { chain };
        assert_eq!(DgMsg::decode_exact(&msg.encode_to_vec()).unwrap(), msg);
    }

    #[test]
    fn rounds_constant_in_t() {
        assert_eq!(DegradableParams::new(4, 1, vec![]).rounds(), 3);
        assert_eq!(DegradableParams::new(16, 5, vec![]).rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "n > 3t")]
    fn resilience_bound_enforced() {
        let _ = DegradableParams::new(6, 2, vec![]);
    }
}
