//! Key material and per-node key stores.
//!
//! Under **local authentication** each node ends the key distribution
//! protocol with its own [`KeyStore`]: the set of test predicates it has
//! personally accepted. Stores of different correct nodes agree on correct
//! nodes' keys (Theorem 2 / properties G1–G2) but may *disagree* about
//! faulty nodes' keys — that is exactly the G3 gap the chain-signature
//! verification discipline closes.

use fd_crypto::{PublicKey, SecretKey, Signature, SignatureScheme};
use fd_simnet::NodeId;

/// A node's own signing identity (`S_i`, `T_i` in the paper).
#[derive(Debug, Clone)]
pub struct Keyring {
    /// The node this keyring belongs to.
    pub me: NodeId,
    /// Secret key `S_i`.
    pub sk: SecretKey,
    /// Public test predicate `T_i`.
    pub pk: PublicKey,
}

impl Keyring {
    /// Deterministically generate node `me`'s keyring.
    ///
    /// The seed mixes the cluster seed with the node id so every node gets
    /// an independent key, reproducibly.
    pub fn generate(scheme: &dyn SignatureScheme, me: NodeId, cluster_seed: u64) -> Self {
        let seed = cluster_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(me.0 as u64 + 1);
        let (sk, pk) = scheme.keypair_from_seed(seed);
        Keyring { me, sk, pk }
    }
}

/// The test predicates one node has accepted for its peers.
///
/// This is the *output* of the key distribution protocol (paper Fig. 1) and
/// the *input* to every authenticated protocol. Each node holds its own
/// store; stores are never shared.
#[derive(Debug, Clone)]
pub struct KeyStore {
    me: NodeId,
    accepted: Vec<Option<PublicKey>>,
}

impl KeyStore {
    /// Empty store for node `me` in an `n`-node system (nothing accepted).
    pub fn new(n: usize, me: NodeId) -> Self {
        KeyStore {
            me,
            accepted: vec![None; n],
        }
    }

    /// Build a *globally authentic* store from the true public keys — the
    /// trusted-dealer alternative the paper contrasts with (G1–G3 all hold
    /// by construction). Used for baseline comparisons.
    pub fn global(me: NodeId, pks: &[PublicKey]) -> Self {
        KeyStore {
            me,
            accepted: pks.iter().cloned().map(Some).collect(),
        }
    }

    /// Owner of this store.
    pub fn owner(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the system.
    pub fn len(&self) -> usize {
        self.accepted.len()
    }

    /// `true` for the degenerate empty system.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty()
    }

    /// Record that `node`'s test predicate has been accepted.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn accept(&mut self, node: NodeId, pk: PublicKey) {
        self.accepted[node.index()] = Some(pk);
    }

    /// The accepted test predicate for `node`, if any.
    pub fn accepted(&self, node: NodeId) -> Option<&PublicKey> {
        self.accepted.get(node.index()).and_then(|o| o.as_ref())
    }

    /// How many peers (including possibly `me`) have accepted keys.
    pub fn accepted_count(&self) -> usize {
        self.accepted.iter().filter(|o| o.is_some()).count()
    }

    /// Definition 1 (*assignment*): does this node assign `{msg}` with
    /// signature `sig` to `node`? True iff a test predicate was accepted
    /// for `node` and it passes.
    pub fn assigns(
        &self,
        scheme: &dyn SignatureScheme,
        node: NodeId,
        msg: &[u8],
        sig: &Signature,
    ) -> bool {
        match self.accepted(node) {
            Some(pk) => scheme.verify(pk, msg, sig),
            None => false,
        }
    }

    /// Scan all accepted predicates for one that verifies the signature.
    ///
    /// Correct protocols never need this (they always check a *claimed*
    /// signer); it exists so tests can exhibit the G3 failure mode, where
    /// two correct nodes assign the same signed message to different
    /// (faulty) nodes.
    pub fn find_assignee(
        &self,
        scheme: &dyn SignatureScheme,
        msg: &[u8],
        sig: &Signature,
    ) -> Option<NodeId> {
        (0..self.accepted.len())
            .map(|i| NodeId(i as u16))
            .find(|&node| self.assigns(scheme, node, msg, sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_crypto::SchnorrScheme;

    #[test]
    fn keyring_generation_is_deterministic_and_distinct() {
        let scheme = SchnorrScheme::test_tiny();
        let a = Keyring::generate(&scheme, NodeId(0), 1);
        let b = Keyring::generate(&scheme, NodeId(0), 1);
        let c = Keyring::generate(&scheme, NodeId(1), 1);
        let d = Keyring::generate(&scheme, NodeId(0), 2);
        assert_eq!(a.pk, b.pk);
        assert_ne!(a.pk, c.pk);
        assert_ne!(a.pk, d.pk);
    }

    #[test]
    fn assignment_requires_acceptance() {
        let scheme = SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(1), 7);
        let sig = scheme.sign(&ring.sk, b"m").unwrap();

        let mut store = KeyStore::new(3, NodeId(0));
        // Not accepted yet: no assignment.
        assert!(!store.assigns(&scheme, NodeId(1), b"m", &sig));
        store.accept(NodeId(1), ring.pk.clone());
        assert!(store.assigns(&scheme, NodeId(1), b"m", &sig));
        // Wrong node: no assignment.
        assert!(!store.assigns(&scheme, NodeId(2), b"m", &sig));
        assert_eq!(store.accepted_count(), 1);
    }

    #[test]
    fn find_assignee_scans() {
        let scheme = SchnorrScheme::test_tiny();
        let rings: Vec<Keyring> = (0..3)
            .map(|i| Keyring::generate(&scheme, NodeId(i), 9))
            .collect();
        let store = KeyStore::global(
            NodeId(0),
            &rings.iter().map(|r| r.pk.clone()).collect::<Vec<_>>(),
        );
        let sig = scheme.sign(&rings[2].sk, b"m").unwrap();
        assert_eq!(store.find_assignee(&scheme, b"m", &sig), Some(NodeId(2)));
        assert_eq!(store.find_assignee(&scheme, b"other", &sig), None);
    }

    #[test]
    fn global_store_accepts_everyone() {
        let scheme = SchnorrScheme::test_tiny();
        let pks: Vec<_> = (0..4)
            .map(|i| Keyring::generate(&scheme, NodeId(i), 3).pk)
            .collect();
        let store = KeyStore::global(NodeId(2), &pks);
        assert_eq!(store.accepted_count(), 4);
        assert_eq!(store.owner(), NodeId(2));
        assert_eq!(store.len(), 4);
    }
}
