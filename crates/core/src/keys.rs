//! Key material, per-node key stores, and the shared-allocation machinery
//! behind them.
//!
//! Under **local authentication** each node ends the key distribution
//! protocol with its own [`KeyStore`]: the set of test predicates it has
//! personally accepted. Stores of different correct nodes agree on correct
//! nodes' keys (Theorem 2 / properties G1–G2) but may *disagree* about
//! faulty nodes' keys — that is exactly the G3 gap the chain-signature
//! verification discipline closes.
//!
//! ## Allocation discipline
//!
//! Stores are *logically* private per node but *physically* share key
//! material: every accepted entry is an `Arc<PublicKey>`, so cloning a
//! store (which every protocol run does, once per node) bumps reference
//! counts instead of deep-copying `n` keys. A [`PredicateTable`] holds the
//! cluster's true predicates once; key distribution interns announced
//! predicates against it, so the honest case allocates `O(n)` distinct
//! keys across all `n` stores instead of `O(n²)` (a misbehaving announcer
//! still gets a private allocation — sharing never changes which bytes a
//! store holds).
//!
//! ## Verification caching
//!
//! [`VerifyCache`] memoizes signature-predicate evaluations per run.
//! `scheme.verify(pk, msg, sig)` is a pure function of its inputs, so a
//! cache keyed by a hash of `(scheme, pk, msg, sig)` is sound even when it
//! is shared across nodes whose stores disagree (disagreeing stores hold
//! different `pk` bytes and therefore hit different entries). The chain
//! discipline re-checks the full chain at every hop; the cache is what
//! makes hop `k + 1` pay only for the one new layer.
//!
//! On top of both sits the **cohort layer**: a broadcast hands one shared
//! payload buffer to `n − 1` receivers, so the whole screening pipeline
//! (decode, structure checks, signer extraction, verification) is judged
//! once per [`CohortKey`] — `(payload ident, sender, round)` — and the
//! resulting [`CohortVerdict`] is replayed for every other receiver whose
//! store views the implied signers identically. Stores that disagree about
//! a signer's key (the G3 gap) fail the view match and get their own
//! entry, so batching never merges genuinely different verdicts.

use crate::chain::ChainMessage;
use crate::outcome::DiscoveryReason;
use fd_crypto::{PublicKey, SecretKey, Sha256, Signature, SignatureScheme};
use fd_simnet::{NodeId, Payload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A node's own signing identity (`S_i`, `T_i` in the paper).
#[derive(Debug, Clone)]
pub struct Keyring {
    /// The node this keyring belongs to.
    pub me: NodeId,
    /// Secret key `S_i`.
    pub sk: SecretKey,
    /// Public test predicate `T_i`.
    pub pk: PublicKey,
}

impl Keyring {
    /// Deterministically generate node `me`'s keyring.
    ///
    /// The seed mixes the cluster seed with the node id so every node gets
    /// an independent key, reproducibly.
    pub fn generate(scheme: &dyn SignatureScheme, me: NodeId, cluster_seed: u64) -> Self {
        let seed = cluster_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(me.0 as u64 + 1);
        let (sk, pk) = scheme.keypair_from_seed(seed);
        Keyring { me, sk, pk }
    }
}

/// The cluster's true test predicates, allocated once and shared by every
/// store that accepts them.
///
/// The table serves two masters: [`KeyStore::global_shared`] builds the
/// trusted-dealer baseline from it without per-store copies, and the key
/// distribution protocol *interns* announced predicates against it —
/// announced bytes that match the canonical predicate reuse the shared
/// allocation, anything else (a faulty announcer) gets a fresh private
/// one. The interning counters make the allocation profile observable:
/// `distinct_allocations()` is `n + fresh` and stays `O(n)` in the honest
/// case (asserted by the large-`n` sharing tests).
#[derive(Debug)]
pub struct PredicateTable {
    keys: Vec<Arc<PublicKey>>,
    interned: AtomicUsize,
    fresh: AtomicUsize,
}

impl PredicateTable {
    /// Build the table from the cluster parameters (the same derivation as
    /// [`Keyring::generate`], predicate part only).
    pub fn generate(scheme: &dyn SignatureScheme, n: usize, cluster_seed: u64) -> Self {
        let keys = (0..n)
            .map(|i| Arc::new(Keyring::generate(scheme, NodeId(i as u16), cluster_seed).pk))
            .collect();
        PredicateTable::from_keys(keys)
    }

    /// Build the table from already generated predicates.
    pub fn from_keys(keys: Vec<Arc<PublicKey>>) -> Self {
        PredicateTable {
            keys,
            interned: AtomicUsize::new(0),
            fresh: AtomicUsize::new(0),
        }
    }

    /// Number of canonical predicates.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` for the degenerate empty table.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The canonical shared predicate of `node`, if in range.
    pub fn entry(&self, node: NodeId) -> Option<&Arc<PublicKey>> {
        self.keys.get(node.index())
    }

    /// The canonical predicates, for bulk store construction.
    pub fn keys(&self) -> &[Arc<PublicKey>] {
        &self.keys
    }

    /// Intern predicate bytes announced by `node`: bytes equal to the
    /// canonical predicate share its allocation, anything else allocates
    /// privately. Either way the returned key holds exactly `bytes` — the
    /// table is an allocation optimization, never a semantic one.
    pub fn intern(&self, node: NodeId, bytes: Vec<u8>) -> Arc<PublicKey> {
        if let Some(canonical) = self.keys.get(node.index()) {
            if canonical.0 == bytes {
                self.interned.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(canonical);
            }
        }
        self.fresh.fetch_add(1, Ordering::Relaxed);
        Arc::new(PublicKey(bytes))
    }

    /// How many intern calls reused a shared allocation.
    pub fn interned_count(&self) -> usize {
        self.interned.load(Ordering::Relaxed)
    }

    /// How many intern calls had to allocate privately.
    pub fn fresh_count(&self) -> usize {
        self.fresh.load(Ordering::Relaxed)
    }

    /// Distinct `PublicKey` allocations attributable to this table: the
    /// `n` canonical keys plus every non-interned announcement. `O(n)` in
    /// the honest case regardless of how many stores were built.
    pub fn distinct_allocations(&self) -> usize {
        self.keys.len() + self.fresh_count()
    }

    /// How many handles currently share `node`'s canonical allocation
    /// (including the table's own).
    pub fn ref_count(&self, node: NodeId) -> Option<usize> {
        self.keys.get(node.index()).map(Arc::strong_count)
    }
}

/// Per-run memoization of signature-predicate evaluations.
///
/// Cloning shares the cache; a fresh one is installed per protocol run
/// (see `Cluster::dispatch`) so memory stays bounded by a single run's
/// distinct signatures. Two layers:
///
/// * **Signature level** — `(pk, msg, sig) → bool`, consulted by
///   [`KeyStore::assigns`]. Sound because the predicate is pure.
/// * **Chain level** — a whole chain-verification *receipt* keyed by the
///   chain bytes, the immediate sender, and the store's view of every
///   implied signer (see `ChainMessage::verify_cached` in
///   [`crate::chain`]). Including the store view keeps the paper's G3
///   subtlety intact: two stores holding different predicates for a faulty
///   signer hash to different receipts and can still disagree — loudly.
///
/// Keys are SHA-256 over length-prefixed parts, so structurally different
/// inputs cannot collide by concatenation.
#[derive(Clone, Debug, Default)]
pub struct VerifyCache {
    sigs: Arc<Mutex<HashMap<[u8; 32], bool>>>,
    chains: Arc<Mutex<ChainReceipts>>,
    cohorts: Arc<Mutex<HashMap<CohortKey, Cohort>>>,
    /// Set by [`VerifyCache::without_cohorts`]: this handle bypasses the
    /// cohort layer entirely (the chain-receipt and signature layers stay
    /// active). The unbatched reference runs of the equivalence tests use
    /// this to force per-message verification.
    cohorts_disabled: bool,
    hits: Arc<AtomicUsize>,
    misses: Arc<AtomicUsize>,
    /// Wall-clock nanoseconds spent inside signature-predicate
    /// evaluations on the miss path, accumulated only when
    /// [`VerifyCache::with_timing`] armed the accumulator. `None` (the
    /// default) keeps the hot path free of clock reads.
    verify_ns: Option<Arc<std::sync::atomic::AtomicU64>>,
}

/// Chain-level verification receipts, keyed by receipt hash.
type ChainReceipts = HashMap<[u8; 32], Result<NodeId, DiscoveryReason>>;

/// Cohort identity: the payload's allocation ident
/// ([`Payload::ident`]), the immediate sender, and the round the chain is
/// being validated for. A broadcast hands one shared buffer to `n − 1`
/// receivers, so all of them compute the same key with three word reads —
/// no hashing of the chain bytes.
pub type CohortKey = ((usize, usize, usize), NodeId, u32);

/// A receiving node's store view of a chain's implied signers: for each
/// signer, the `Arc` handle the store currently holds (or `None` when
/// nothing was accepted). Two stores with matching views are guaranteed
/// the same verification verdict, because [`ChainMessage::verify`] reads
/// the store only through these slots.
type SignerView = Vec<(NodeId, Option<Arc<PublicKey>>)>;

/// One judged cohort member: the verdict plus the store view it was
/// computed under (empty for store-independent verdicts).
#[derive(Debug)]
struct CohortEntry {
    view: SignerView,
    verdict: CohortVerdict,
}

/// All verdicts recorded for one cohort key. `pin` keeps the payload's
/// backing buffer alive for the life of the cache, so the raw address in
/// the key can never be recycled by a new allocation — equal keys
/// therefore always mean equal bytes.
#[derive(Debug)]
struct Cohort {
    _pin: Payload,
    entries: Vec<CohortEntry>,
}

/// The batched-verification verdict on one member of a broadcast cohort.
///
/// [`CohortVerdict::judge`] runs the full Dolev–Strong-style screening
/// once per `(payload buffer, sender, round, store view)` class; every
/// other receiver of the same broadcast replays the verdict from the
/// cohort cache. The first three variants depend only on the chain bytes
/// (any store reaches them identically); the last two also depend on the
/// receiver's accepted predicates, so they are cached together with the
/// `SignerView` they were judged under.
///
/// What a verdict *means* to a receiver still depends on the receiver
/// itself: a node that appears in `signers` treats the message as an echo
/// of a chain it already signed and stays silent. That per-receiver echo
/// rule is deliberately left out of the verdict so one verdict serves the
/// whole cohort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CohortVerdict {
    /// The payload does not decode to a chain message.
    Malformed,
    /// Wrong claimed origin or wrong signature count for the round.
    BadChain,
    /// The signer sequence repeats a node.
    Duplicate {
        /// The implied signer sequence (origin first).
        signers: Arc<[NodeId]>,
    },
    /// The chain verified; `body` is the carried value.
    Accept {
        /// The implied signer sequence (origin first).
        signers: Arc<[NodeId]>,
        /// The chain's body bytes, shared across the cohort.
        body: Arc<[u8]>,
    },
    /// Verification discovered a failure.
    Discovered {
        /// The implied signer sequence (origin first).
        signers: Arc<[NodeId]>,
        /// The discovery the verification raised.
        reason: DiscoveryReason,
    },
}

impl CohortVerdict {
    /// Judge one cohort member: structural screening, then cryptographic
    /// verification through the store (and its chain-receipt cache).
    ///
    /// `chain` is `None` when the payload failed to decode — the caller
    /// decodes (once per cohort, on the miss path) so this module never
    /// learns the wire framing. `expected_count` is the signature count a
    /// round-`r` chain must carry.
    pub fn judge(
        scheme: &dyn SignatureScheme,
        store: &KeyStore,
        chain: Option<&ChainMessage>,
        from: NodeId,
        expected_origin: NodeId,
        expected_count: usize,
    ) -> CohortVerdict {
        let Some(chain) = chain else {
            return CohortVerdict::Malformed;
        };
        if chain.origin != expected_origin || chain.signature_count() != expected_count {
            return CohortVerdict::BadChain;
        }
        let signers: Arc<[NodeId]> = chain.signer_sequence(from).into();
        let distinct: std::collections::BTreeSet<NodeId> = signers.iter().copied().collect();
        if distinct.len() != signers.len() {
            return CohortVerdict::Duplicate { signers };
        }
        match chain.verify_cached(scheme, store, from) {
            Ok(_) => CohortVerdict::Accept {
                signers,
                body: Arc::from(chain.body.as_slice()),
            },
            Err(reason) => CohortVerdict::Discovered { signers, reason },
        }
    }

    /// The implied signer sequence, when the chain decoded with plausible
    /// structure (empty for [`CohortVerdict::Malformed`] and
    /// [`CohortVerdict::BadChain`], whose handling never needs it).
    pub fn signers(&self) -> &[NodeId] {
        match self {
            CohortVerdict::Malformed | CohortVerdict::BadChain => &[],
            CohortVerdict::Duplicate { signers }
            | CohortVerdict::Accept { signers, .. }
            | CohortVerdict::Discovered { signers, .. } => signers,
        }
    }

    /// Whether the verdict depends on the judging store's accepted
    /// predicates (and must therefore be matched against a
    /// [`SignerView`]).
    fn store_dependent(&self) -> bool {
        matches!(
            self,
            CohortVerdict::Accept { .. } | CohortVerdict::Discovered { .. }
        )
    }
}

/// The store view a verdict's signers resolve to under `store`.
fn signer_view(store: &KeyStore, signers: &[NodeId]) -> SignerView {
    signers
        .iter()
        .map(|&s| (s, store.accepted_shared(s).cloned()))
        .collect()
}

/// Does `store` see exactly the predicates `view` was judged under?
/// Pointer equality first (stores share allocations via
/// [`PredicateTable`], so the honest case is `r + 1` pointer compares),
/// byte equality as the correct fallback for disagreeing allocations that
/// happen to hold the same bytes.
fn view_matches(store: &KeyStore, view: &SignerView) -> bool {
    view.iter()
        .all(|(s, slot)| match (store.accepted_shared(*s), slot) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b) || a.0 == b.0,
            _ => false,
        })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Hash length-prefixed parts into a cache key.
fn cache_key(domain: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(domain);
    for part in parts {
        h.update(&(part.len() as u64).to_be_bytes());
        h.update(part);
    }
    h.finalize()
}

impl VerifyCache {
    /// Fresh empty cache.
    pub fn new() -> Self {
        VerifyCache::default()
    }

    /// Evaluate `scheme.verify(pk, msg, sig)` through the cache.
    pub fn verify_sig(
        &self,
        scheme: &dyn SignatureScheme,
        pk: &PublicKey,
        msg: &[u8],
        sig: &Signature,
    ) -> bool {
        let key = cache_key(
            b"fd-verify-sig-v1",
            &[scheme.name().as_bytes(), &pk.0, msg, &sig.0],
        );
        if let Some(&cached) = lock(&self.sigs).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        let result = match &self.verify_ns {
            None => scheme.verify(pk, msg, sig),
            Some(acc) => {
                let start = std::time::Instant::now();
                let result = scheme.verify(pk, msg, sig);
                let spent = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                acc.fetch_add(spent, Ordering::Relaxed);
                result
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        lock(&self.sigs).insert(key, result);
        result
    }

    /// Look up a whole-chain verification receipt.
    pub(crate) fn chain_get(&self, key: &[u8; 32]) -> Option<Result<NodeId, DiscoveryReason>> {
        let cached = lock(&self.chains).get(key).cloned();
        match cached {
            Some(receipt) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(receipt)
            }
            None => None,
        }
    }

    /// Record a whole-chain verification receipt.
    pub(crate) fn chain_put(&self, key: [u8; 32], receipt: Result<NodeId, DiscoveryReason>) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        lock(&self.chains).insert(key, receipt);
    }

    /// Build a whole-chain receipt key from length-prefixed parts.
    pub(crate) fn chain_key(parts: &[&[u8]]) -> [u8; 32] {
        cache_key(b"fd-verify-chain-v1", parts)
    }

    /// A handle with the cohort layer disabled (chain-receipt and
    /// signature layers unaffected). The flag is per-handle: cloning an
    /// enabled cache keeps cohorts on.
    #[must_use]
    pub fn without_cohorts(mut self) -> Self {
        self.cohorts_disabled = true;
        self
    }

    /// Whether this handle participates in cohort caching.
    pub fn cohorts_enabled(&self) -> bool {
        !self.cohorts_disabled
    }

    /// Look up a cohort verdict valid under `store`'s view of the
    /// relevant signers.
    pub(crate) fn cohort_get(&self, key: &CohortKey, store: &KeyStore) -> Option<CohortVerdict> {
        if self.cohorts_disabled {
            return None;
        }
        let verdict = {
            let map = lock(&self.cohorts);
            let cohort = map.get(key)?;
            cohort
                .entries
                .iter()
                .find(|e| !e.verdict.store_dependent() || view_matches(store, &e.view))
                .map(|e| e.verdict.clone())?
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(verdict)
    }

    /// Record a cohort verdict judged under `store`, pinning `payload`'s
    /// buffer so the key's address stays live for the cache's lifetime.
    pub(crate) fn cohort_put(
        &self,
        key: CohortKey,
        payload: &Payload,
        store: &KeyStore,
        verdict: CohortVerdict,
    ) {
        if self.cohorts_disabled {
            return;
        }
        let view = if verdict.store_dependent() {
            signer_view(store, verdict.signers())
        } else {
            Vec::new()
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        lock(&self.cohorts)
            .entry(key)
            .or_insert_with(|| Cohort {
                _pin: payload.clone(),
                entries: Vec::new(),
            })
            .entries
            .push(CohortEntry { view, verdict });
    }

    /// Cache hits so far (signature and chain level combined).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= underlying verifications actually executed).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Arm the wall-clock accumulator: clones of this handle (and the
    /// stores they are installed on) will time every signature-predicate
    /// evaluation executed on the miss path. Timing never changes results
    /// or cache contents — it only feeds
    /// [`VerifyCache::verify_wall_us`].
    pub fn with_timing(mut self) -> Self {
        self.verify_ns = Some(Arc::new(std::sync::atomic::AtomicU64::new(0)));
        self
    }

    /// Accumulated wall-clock microseconds of signature-predicate
    /// evaluation, or `None` when timing was never armed.
    pub fn verify_wall_us(&self) -> Option<u64> {
        self.verify_ns
            .as_ref()
            .map(|acc| acc.load(Ordering::Relaxed) / 1_000)
    }
}

/// The test predicates one node has accepted for its peers.
///
/// This is the *output* of the key distribution protocol (paper Fig. 1) and
/// the *input* to every authenticated protocol. Each node holds its own
/// store; stores are never shared — but the *allocations* behind their
/// entries are (`Arc<PublicKey>`), so cloning a store is `O(n)` pointer
/// bumps, not `O(n)` key copies.
#[derive(Debug, Clone)]
pub struct KeyStore {
    me: NodeId,
    accepted: Vec<Option<Arc<PublicKey>>>,
    accepted_count: usize,
    cache: Option<VerifyCache>,
}

impl KeyStore {
    /// Empty store for node `me` in an `n`-node system (nothing accepted).
    pub fn new(n: usize, me: NodeId) -> Self {
        KeyStore {
            me,
            accepted: vec![None; n],
            accepted_count: 0,
            cache: None,
        }
    }

    /// Build a *globally authentic* store from the true public keys — the
    /// trusted-dealer alternative the paper contrasts with (G1–G3 all hold
    /// by construction). Used for baseline comparisons. Allocates fresh
    /// keys; use [`KeyStore::global_shared`] to share a
    /// [`PredicateTable`]'s allocations instead.
    pub fn global(me: NodeId, pks: &[PublicKey]) -> Self {
        let accepted: Vec<_> = pks.iter().cloned().map(Arc::new).map(Some).collect();
        KeyStore {
            me,
            accepted_count: accepted.len(),
            accepted,
            cache: None,
        }
    }

    /// Build a globally authentic store sharing already allocated keys —
    /// `n` stores over one [`PredicateTable`] cost `O(n)` distinct
    /// allocations total instead of `O(n²)`.
    pub fn global_shared(me: NodeId, pks: &[Arc<PublicKey>]) -> Self {
        let accepted: Vec<_> = pks.iter().map(Arc::clone).map(Some).collect();
        KeyStore {
            me,
            accepted_count: accepted.len(),
            accepted,
            cache: None,
        }
    }

    /// Attach a per-run verification cache ([`VerifyCache`] is a shared
    /// handle; every store of one run gets a clone of the same cache).
    #[must_use]
    pub fn with_cache(mut self, cache: VerifyCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached verification cache, if any.
    pub fn cache(&self) -> Option<&VerifyCache> {
        self.cache.as_ref()
    }

    /// Owner of this store.
    pub fn owner(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the system.
    pub fn len(&self) -> usize {
        self.accepted.len()
    }

    /// `true` for the degenerate empty system.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty()
    }

    /// Record that `node`'s test predicate has been accepted. Accepts both
    /// owned keys and shared `Arc` handles (`impl Into<Arc<PublicKey>>`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn accept(&mut self, node: NodeId, pk: impl Into<Arc<PublicKey>>) {
        let slot = &mut self.accepted[node.index()];
        if slot.is_none() {
            self.accepted_count += 1;
        }
        *slot = Some(pk.into());
    }

    /// The accepted test predicate for `node`, if any.
    pub fn accepted(&self, node: NodeId) -> Option<&PublicKey> {
        self.accepted.get(node.index()).and_then(|o| o.as_deref())
    }

    /// The accepted predicate of `node` as a shared handle, if any.
    pub fn accepted_shared(&self, node: NodeId) -> Option<&Arc<PublicKey>> {
        self.accepted.get(node.index()).and_then(|o| o.as_ref())
    }

    /// How many peers (including possibly `me`) have accepted keys.
    /// Maintained incrementally by [`KeyStore::accept`] — `O(1)`, not an
    /// `O(n)` rescan.
    pub fn accepted_count(&self) -> usize {
        self.accepted_count
    }

    /// Definition 1 (*assignment*): does this node assign `{msg}` with
    /// signature `sig` to `node`? True iff a test predicate was accepted
    /// for `node` and it passes. Routed through the per-run
    /// [`VerifyCache`] when one is attached.
    pub fn assigns(
        &self,
        scheme: &dyn SignatureScheme,
        node: NodeId,
        msg: &[u8],
        sig: &Signature,
    ) -> bool {
        match self.accepted(node) {
            Some(pk) => match &self.cache {
                Some(cache) => cache.verify_sig(scheme, pk, msg, sig),
                None => scheme.verify(pk, msg, sig),
            },
            None => false,
        }
    }

    /// Scan all accepted predicates for one that verifies the signature.
    ///
    /// Correct protocols never need this (they always check a *claimed*
    /// signer); it exists so tests can exhibit the G3 failure mode, where
    /// two correct nodes assign the same signed message to different
    /// (faulty) nodes.
    pub fn find_assignee(
        &self,
        scheme: &dyn SignatureScheme,
        msg: &[u8],
        sig: &Signature,
    ) -> Option<NodeId> {
        (0..self.accepted.len())
            .map(|i| NodeId(i as u16))
            .find(|&node| self.assigns(scheme, node, msg, sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_crypto::SchnorrScheme;
    use fd_simnet::codec::Encode;

    #[test]
    fn keyring_generation_is_deterministic_and_distinct() {
        let scheme = SchnorrScheme::test_tiny();
        let a = Keyring::generate(&scheme, NodeId(0), 1);
        let b = Keyring::generate(&scheme, NodeId(0), 1);
        let c = Keyring::generate(&scheme, NodeId(1), 1);
        let d = Keyring::generate(&scheme, NodeId(0), 2);
        assert_eq!(a.pk, b.pk);
        assert_ne!(a.pk, c.pk);
        assert_ne!(a.pk, d.pk);
    }

    #[test]
    fn assignment_requires_acceptance() {
        let scheme = SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(1), 7);
        let sig = scheme.sign(&ring.sk, b"m").unwrap();

        let mut store = KeyStore::new(3, NodeId(0));
        // Not accepted yet: no assignment.
        assert!(!store.assigns(&scheme, NodeId(1), b"m", &sig));
        store.accept(NodeId(1), ring.pk.clone());
        assert!(store.assigns(&scheme, NodeId(1), b"m", &sig));
        // Wrong node: no assignment.
        assert!(!store.assigns(&scheme, NodeId(2), b"m", &sig));
        assert_eq!(store.accepted_count(), 1);
    }

    #[test]
    fn find_assignee_scans() {
        let scheme = SchnorrScheme::test_tiny();
        let rings: Vec<Keyring> = (0..3)
            .map(|i| Keyring::generate(&scheme, NodeId(i), 9))
            .collect();
        let store = KeyStore::global(
            NodeId(0),
            &rings.iter().map(|r| r.pk.clone()).collect::<Vec<_>>(),
        );
        let sig = scheme.sign(&rings[2].sk, b"m").unwrap();
        assert_eq!(store.find_assignee(&scheme, b"m", &sig), Some(NodeId(2)));
        assert_eq!(store.find_assignee(&scheme, b"other", &sig), None);
    }

    #[test]
    fn global_store_accepts_everyone() {
        let scheme = SchnorrScheme::test_tiny();
        let pks: Vec<_> = (0..4)
            .map(|i| Keyring::generate(&scheme, NodeId(i), 3).pk)
            .collect();
        let store = KeyStore::global(NodeId(2), &pks);
        assert_eq!(store.accepted_count(), 4);
        assert_eq!(store.owner(), NodeId(2));
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn accepted_count_stays_correct_on_reaccept() {
        let scheme = SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(1), 7);
        let mut store = KeyStore::new(3, NodeId(0));
        assert_eq!(store.accepted_count(), 0);
        store.accept(NodeId(1), ring.pk.clone());
        store.accept(NodeId(1), ring.pk.clone()); // overwrite, not double-count
        assert_eq!(store.accepted_count(), 1);
        store.accept(NodeId(2), ring.pk.clone());
        assert_eq!(store.accepted_count(), 2);
        // The counter always matches a full rescan.
        let rescan = (0..store.len())
            .filter(|&i| store.accepted(NodeId(i as u16)).is_some())
            .count();
        assert_eq!(store.accepted_count(), rescan);
    }

    #[test]
    fn global_shared_stores_share_allocations() {
        let scheme = SchnorrScheme::test_tiny();
        let table = PredicateTable::generate(&scheme, 4, 11);
        let stores: Vec<KeyStore> = (0..4)
            .map(|i| KeyStore::global_shared(NodeId(i as u16), table.keys()))
            .collect();
        // 4 stores × 4 keys, yet each allocation is shared: table + 4.
        for node in NodeId::all(4) {
            assert_eq!(table.ref_count(node), Some(5));
        }
        // Cloning a store bumps counts, never reallocates.
        let _clone = stores[0].clone();
        assert_eq!(table.ref_count(NodeId(0)), Some(6));
        assert_eq!(table.distinct_allocations(), 4);
    }

    #[test]
    fn intern_shares_only_matching_bytes() {
        let scheme = SchnorrScheme::test_tiny();
        let table = PredicateTable::generate(&scheme, 3, 5);
        let canonical = table.entry(NodeId(1)).unwrap().0.clone();
        let shared = table.intern(NodeId(1), canonical.clone());
        assert!(Arc::ptr_eq(&shared, table.entry(NodeId(1)).unwrap()));
        // Equivocated bytes get a private allocation holding exactly them.
        let private = table.intern(NodeId(1), b"equivocated".to_vec());
        assert_eq!(private.0, b"equivocated");
        assert!(!Arc::ptr_eq(&private, table.entry(NodeId(1)).unwrap()));
        // Out-of-range announcers never panic.
        let stray = table.intern(NodeId(9), b"stray".to_vec());
        assert_eq!(stray.0, b"stray");
        assert_eq!(table.interned_count(), 1);
        assert_eq!(table.fresh_count(), 2);
        assert_eq!(table.distinct_allocations(), 5);
    }

    #[test]
    fn verify_cache_memoizes_pure_predicate() {
        let scheme = SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(0), 3);
        let sig = scheme.sign(&ring.sk, b"m").unwrap();
        let cache = VerifyCache::new();
        let mut store = KeyStore::new(2, NodeId(1)).with_cache(cache.clone());
        store.accept(NodeId(0), ring.pk.clone());

        assert!(store.assigns(&scheme, NodeId(0), b"m", &sig));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Identical query: served from the cache, same answer.
        assert!(store.assigns(&scheme, NodeId(0), b"m", &sig));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different message is a different entry — and still false.
        assert!(!store.assigns(&scheme, NodeId(0), b"n", &sig));
        assert!(!store.assigns(&scheme, NodeId(0), b"n", &sig));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    fn cohort_rings(n: usize, seed: u64) -> (SchnorrScheme, Vec<Keyring>, Vec<PublicKey>) {
        let scheme = SchnorrScheme::test_tiny();
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(&scheme, NodeId(i as u16), seed))
            .collect();
        let pks: Vec<PublicKey> = rings.iter().map(|r| r.pk.clone()).collect();
        (scheme, rings, pks)
    }

    /// A two-signature chain P0 → P1, as received from P1.
    fn two_hop_chain(scheme: &SchnorrScheme, rings: &[Keyring]) -> ChainMessage {
        ChainMessage::originate(scheme, &rings[0].sk, NodeId(0), b"v".to_vec())
            .unwrap()
            .extend(scheme, &rings[1].sk, NodeId(0))
            .unwrap()
    }

    #[test]
    fn cohort_judge_matches_per_message_verify() {
        // The batched verdict must agree with what per-message
        // verify_cached (plus the structural screening around it) says,
        // across accept, structural-reject, and cryptographic-reject.
        let (scheme, rings, pks) = cohort_rings(4, 31);
        let store = KeyStore::global(NodeId(2), &pks).with_cache(VerifyCache::new());
        let chain = two_hop_chain(&scheme, &rings);

        // Accepted chain: verdict mirrors Ok(body).
        let v = CohortVerdict::judge(&scheme, &store, Some(&chain), NodeId(1), NodeId(0), 2);
        assert_eq!(
            chain.verify_cached(&scheme, &store, NodeId(1)),
            Ok(NodeId(1))
        );
        match &v {
            CohortVerdict::Accept { signers, body } => {
                assert_eq!(signers.as_ref(), &[NodeId(0), NodeId(1)]);
                assert_eq!(body.as_ref(), b"v");
            }
            other => panic!("expected Accept, got {other:?}"),
        }

        // Undecodable payload.
        assert_eq!(
            CohortVerdict::judge(&scheme, &store, None, NodeId(1), NodeId(0), 2),
            CohortVerdict::Malformed
        );
        // Wrong origin and wrong count are both structural.
        assert_eq!(
            CohortVerdict::judge(&scheme, &store, Some(&chain), NodeId(1), NodeId(3), 2),
            CohortVerdict::BadChain
        );
        assert_eq!(
            CohortVerdict::judge(&scheme, &store, Some(&chain), NodeId(1), NodeId(0), 1),
            CohortVerdict::BadChain
        );
        // A repeated signer: P0 → P1 → P0, received from P0 again.
        let cycled = chain
            .clone()
            .extend(&scheme, &rings[0].sk, NodeId(1))
            .unwrap();
        match CohortVerdict::judge(&scheme, &store, Some(&cycled), NodeId(0), NodeId(0), 3) {
            CohortVerdict::Duplicate { signers } => {
                assert_eq!(signers.as_ref(), &[NodeId(0), NodeId(1), NodeId(0)]);
            }
            other => panic!("expected Duplicate, got {other:?}"),
        }
        // A forged layer: discovered, with the same reason per-message
        // verification raises.
        let mut forged = chain.clone();
        forged.body = b"w".to_vec();
        let direct = forged.verify_cached(&scheme, &store, NodeId(1));
        match CohortVerdict::judge(&scheme, &store, Some(&forged), NodeId(1), NodeId(0), 2) {
            CohortVerdict::Discovered { reason, .. } => {
                assert_eq!(Err(reason), direct);
            }
            other => panic!("expected Discovered, got {other:?}"),
        }
    }

    #[test]
    fn cohort_cache_replays_verdicts_per_store_view() {
        // One broadcast buffer, three receivers sharing the honest key
        // material: the first judge is the only miss, the other receivers
        // replay the verdict from the cohort entry.
        let (scheme, rings, pks) = cohort_rings(5, 32);
        let cache = VerifyCache::new();
        let chain = two_hop_chain(&scheme, &rings);
        let payload = Payload::from(chain.encode_to_vec());
        let key: CohortKey = (payload.ident(), NodeId(1), 2);

        let stores: Vec<KeyStore> = [2u16, 3, 4]
            .iter()
            .map(|&i| KeyStore::global(NodeId(i), &pks).with_cache(cache.clone()))
            .collect();
        assert_eq!(cache.cohort_get(&key, &stores[0]), None);
        let verdict =
            CohortVerdict::judge(&scheme, &stores[0], Some(&chain), NodeId(1), NodeId(0), 2);
        cache.cohort_put(key, &payload, &stores[0], verdict.clone());
        for store in &stores[1..] {
            assert_eq!(cache.cohort_get(&key, store), Some(verdict.clone()));
        }
        // The receivers' stores were built by KeyStore::global (fresh
        // allocations per store), so the hits came from the byte-equality
        // fallback of the view match — sharing is an optimization, not a
        // correctness requirement.
    }

    #[test]
    fn cohort_entries_split_on_g3_store_disagreement() {
        // G3: faulty P1 equivocated its key. Store A holds the key that
        // verifies, store B a different one. The cohort must keep two
        // entries and answer each store with its own verdict.
        let (scheme, rings, pks) = cohort_rings(3, 33);
        let (sk_x, pk_x) = scheme.keypair_from_seed(2001);
        let (_, pk_y) = scheme.keypair_from_seed(2002);
        let chain = ChainMessage::originate(&scheme, &rings[0].sk, NodeId(0), b"v".to_vec())
            .unwrap()
            .extend(&scheme, &sk_x, NodeId(0))
            .unwrap();
        let payload = Payload::from(chain.encode_to_vec());
        let key: CohortKey = (payload.ident(), NodeId(1), 2);

        let cache = VerifyCache::new();
        let mut store_a = KeyStore::global(NodeId(2), &pks).with_cache(cache.clone());
        store_a.accept(NodeId(1), pk_x);
        let mut store_b = KeyStore::global(NodeId(2), &pks).with_cache(cache.clone());
        store_b.accept(NodeId(1), pk_y);

        let verdict_a =
            CohortVerdict::judge(&scheme, &store_a, Some(&chain), NodeId(1), NodeId(0), 2);
        cache.cohort_put(key, &payload, &store_a, verdict_a.clone());
        assert!(matches!(verdict_a, CohortVerdict::Accept { .. }));

        // Store B must NOT be served A's verdict: its view differs.
        assert_eq!(cache.cohort_get(&key, &store_b), None);
        let verdict_b =
            CohortVerdict::judge(&scheme, &store_b, Some(&chain), NodeId(1), NodeId(0), 2);
        cache.cohort_put(key, &payload, &store_b, verdict_b.clone());
        match &verdict_b {
            CohortVerdict::Discovered { reason, .. } => {
                assert_eq!(*reason, DiscoveryReason::BadSignature);
            }
            other => panic!("expected Discovered, got {other:?}"),
        }
        // Both entries now coexist under one key; each store gets its own.
        assert_eq!(cache.cohort_get(&key, &store_a), Some(verdict_a));
        assert_eq!(cache.cohort_get(&key, &store_b), Some(verdict_b));
    }

    #[test]
    fn mixed_cohort_forged_member_keeps_its_own_key() {
        // Two broadcasts in flight: an honest chain and a forged sibling
        // with identical logical coordinates. Their payload buffers differ,
        // so they land in different cohorts — the forged one can never
        // borrow the honest verdict.
        let (scheme, rings, pks) = cohort_rings(4, 34);
        let cache = VerifyCache::new();
        let store = KeyStore::global(NodeId(3), &pks).with_cache(cache.clone());
        let honest = two_hop_chain(&scheme, &rings);
        let mut forged = honest.clone();
        forged.body = b"w".to_vec();

        let honest_payload = Payload::from(honest.encode_to_vec());
        let forged_payload = Payload::from(forged.encode_to_vec());
        let honest_key: CohortKey = (honest_payload.ident(), NodeId(1), 2);
        let forged_key: CohortKey = (forged_payload.ident(), NodeId(1), 2);
        assert_ne!(honest_key, forged_key);

        let hv = CohortVerdict::judge(&scheme, &store, Some(&honest), NodeId(1), NodeId(0), 2);
        cache.cohort_put(honest_key, &honest_payload, &store, hv);
        assert_eq!(cache.cohort_get(&forged_key, &store), None);
        let fv = CohortVerdict::judge(&scheme, &store, Some(&forged), NodeId(1), NodeId(0), 2);
        assert!(matches!(fv, CohortVerdict::Discovered { .. }));
        cache.cohort_put(forged_key, &forged_payload, &store, fv.clone());
        assert!(matches!(
            cache.cohort_get(&honest_key, &store),
            Some(CohortVerdict::Accept { .. })
        ));
        assert_eq!(cache.cohort_get(&forged_key, &store), Some(fv));
    }

    #[test]
    fn structural_verdicts_are_store_independent() {
        // Malformed / BadChain / Duplicate never consult the store, so a
        // store with a completely different view still replays them.
        let (scheme, rings, pks) = cohort_rings(3, 35);
        let cache = VerifyCache::new();
        let store_full = KeyStore::global(NodeId(2), &pks).with_cache(cache.clone());
        let store_empty = KeyStore::new(3, NodeId(2)).with_cache(cache.clone());

        let chain = two_hop_chain(&scheme, &rings);
        let payload = Payload::from(chain.encode_to_vec());
        let key: CohortKey = (payload.ident(), NodeId(1), 7);
        // Wrong count for "round 7": BadChain regardless of keys.
        let v = CohortVerdict::judge(&scheme, &store_full, Some(&chain), NodeId(1), NodeId(0), 7);
        assert_eq!(v, CohortVerdict::BadChain);
        cache.cohort_put(key, &payload, &store_full, v.clone());
        assert_eq!(cache.cohort_get(&key, &store_empty), Some(v));
    }

    #[test]
    fn without_cohorts_disables_only_this_handle() {
        let (scheme, rings, pks) = cohort_rings(3, 36);
        let cache = VerifyCache::new();
        let reference = cache.clone().without_cohorts();
        assert!(cache.cohorts_enabled());
        assert!(!reference.cohorts_enabled());

        let store = KeyStore::global(NodeId(2), &pks).with_cache(cache.clone());
        let chain = two_hop_chain(&scheme, &rings);
        let payload = Payload::from(chain.encode_to_vec());
        let key: CohortKey = (payload.ident(), NodeId(1), 2);
        let v = CohortVerdict::judge(&scheme, &store, Some(&chain), NodeId(1), NodeId(0), 2);
        cache.cohort_put(key, &payload, &store, v.clone());
        // The disabled handle neither reads nor writes the cohort map …
        assert_eq!(reference.cohort_get(&key, &store), None);
        reference.cohort_put(key, &payload, &store, CohortVerdict::Malformed);
        // … so the enabled handle still sees exactly the original verdict.
        assert_eq!(cache.cohort_get(&key, &store), Some(v));
    }

    #[test]
    fn shared_cache_respects_store_disagreement() {
        // G3: two stores hold different predicates for the same (faulty)
        // node. A shared cache must still give each store its own answer.
        let scheme = SchnorrScheme::test_tiny();
        let (sk_a, pk_a) = scheme.keypair_from_seed(1001);
        let (_, pk_b) = scheme.keypair_from_seed(1002);
        let sig = scheme.sign(&sk_a, b"m").unwrap();
        let cache = VerifyCache::new();
        let mut store_a = KeyStore::new(2, NodeId(0)).with_cache(cache.clone());
        store_a.accept(NodeId(1), pk_a);
        let mut store_b = KeyStore::new(2, NodeId(0)).with_cache(cache.clone());
        store_b.accept(NodeId(1), pk_b);
        for _ in 0..2 {
            assert!(store_a.assigns(&scheme, NodeId(1), b"m", &sig));
            assert!(!store_b.assigns(&scheme, NodeId(1), b"m", &sig));
        }
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }
}
