//! Protocol outcomes: decide or discover.

use core::fmt;

/// Why a node discovered a failure (its view diverged from every
/// failure-free run).
///
/// The paper only requires *noticing* a failure, not identifying the faulty
/// node; the reason is diagnostic metadata for tests and reports.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiscoveryReason {
    /// An expected message never arrived.
    MissingMessage {
        /// Round in which the message was due.
        round: u32,
    },
    /// A message arrived that no failure-free run contains.
    UnexpectedMessage {
        /// Round in which it arrived.
        round: u32,
    },
    /// A payload failed to decode as the expected protocol message.
    Malformed,
    /// A signature failed its test predicate (Definition 1 assignment
    /// failed for the claimed node).
    BadSignature,
    /// A chain-signature layer named a node inconsistent with this node's
    /// own assignment of the submessage (Theorem 4 check).
    NameMismatch,
    /// No test predicate was ever accepted for the node a submessage is
    /// attributed to.
    UnknownSigner,
    /// The chain structure violates the protocol (wrong origin, wrong
    /// signer sequence, wrong length).
    BadStructure,
    /// Two conflicting values were presented where one was required.
    Equivocation,
}

impl fmt::Display for DiscoveryReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoveryReason::MissingMessage { round } => {
                write!(f, "expected message missing in round {round}")
            }
            DiscoveryReason::UnexpectedMessage { round } => {
                write!(f, "unexpected message in round {round}")
            }
            DiscoveryReason::Malformed => write!(f, "malformed payload"),
            DiscoveryReason::BadSignature => write!(f, "signature failed test predicate"),
            DiscoveryReason::NameMismatch => write!(f, "chain layer name mismatch"),
            DiscoveryReason::UnknownSigner => write!(f, "no accepted key for claimed signer"),
            DiscoveryReason::BadStructure => write!(f, "chain structure violates protocol"),
            DiscoveryReason::Equivocation => write!(f, "conflicting values presented"),
        }
    }
}

/// The result of a failure-discovery (or agreement) protocol at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Still running.
    Pending,
    /// Chose a decision value (property F1, first disjunct).
    Decided(Vec<u8>),
    /// Discovered a failure (property F1, second disjunct).
    Discovered(DiscoveryReason),
}

impl Outcome {
    /// `true` once the node terminated either way (property F1).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Outcome::Pending)
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<&[u8]> {
        match self {
            Outcome::Decided(v) => Some(v),
            _ => None,
        }
    }

    /// `true` iff this node discovered a failure.
    pub fn is_discovered(&self) -> bool {
        matches!(self, Outcome::Discovered(_))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Pending => write!(f, "pending"),
            Outcome::Decided(v) => write!(f, "decided({} bytes)", v.len()),
            Outcome::Discovered(r) => write!(f, "discovered failure: {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_classification() {
        assert!(!Outcome::Pending.is_terminal());
        assert!(Outcome::Decided(vec![1]).is_terminal());
        assert!(Outcome::Discovered(DiscoveryReason::Malformed).is_terminal());
    }

    #[test]
    fn decided_accessor() {
        assert_eq!(Outcome::Decided(vec![7]).decided(), Some(&[7u8][..]));
        assert_eq!(Outcome::Pending.decided(), None);
        assert!(Outcome::Discovered(DiscoveryReason::BadSignature).is_discovered());
    }

    #[test]
    fn displays_are_informative() {
        let o = Outcome::Discovered(DiscoveryReason::MissingMessage { round: 3 });
        assert!(o.to_string().contains("round 3"));
        assert!(Outcome::Decided(vec![1, 2]).to_string().contains("2 bytes"));
    }
}
