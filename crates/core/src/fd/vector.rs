//! Interactive consistency: `n` parallel chain-FD instances, one per
//! sender, multiplexed over the same `t + 2` rounds.
//!
//! The paper's §7 outlook asks about "the use of local authentication with
//! other agreement protocols". Interactive consistency — every node ends
//! with the same *vector* of all nodes' values — is the canonical next
//! protocol: it is exactly `n` failure-discovery instances run
//! concurrently, with the chain of instance `s` rotated so that node
//! `(s + j) mod n` plays position `j`:
//!
//! ```text
//! instance s:  P_s → P_{s+1} → … → P_{s+t}  → broadcast to the rest
//! ```
//!
//! All instances share rounds (position `j` acts in round `j`), so the
//! whole vector costs `n · (n − 1)` messages in `t + 1` communication
//! rounds — `n` times one FD run, with no extra rounds. Every instance
//! independently satisfies F1–F3 under local authentication (each is a
//! relabeled paper-Fig. 2 run); a malformed or unattributable message is
//! a node-level discovery, exactly as in the paper's single-instance case.

use crate::chain::ChainMessage;
use crate::keys::{KeyStore, Keyring};
use crate::outcome::{DiscoveryReason, Outcome};
use fd_crypto::SignatureScheme;
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox, Payload};
use std::any::Any;
use std::sync::Arc;

/// Wire message: a chain tagged with its instance (the sender whose value
/// it carries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecMsg {
    /// The instance = the designated sender of this chain.
    pub instance: NodeId,
    /// The chain-signed value.
    pub chain: ChainMessage,
}

const TAG_VEC: u8 = 0x70;

impl Encode for VecMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TAG_VEC);
        self.instance.encode(w);
        self.chain.encode(w);
    }
}

impl Decode for VecMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_VEC => Ok(VecMsg {
                instance: NodeId::decode(r)?,
                chain: ChainMessage::decode(r)?,
            }),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Static parameters of an interactive-consistency run.
#[derive(Debug, Clone)]
pub struct VectorFdParams {
    /// System size (also the number of instances).
    pub n: usize,
    /// Tolerated faults; each rotated chain passes through `t` relays.
    pub t: usize,
}

impl VectorFdParams {
    /// Standard parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `t + 2 <= n`.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(t + 2 <= n, "chain plus a recipient must fit in n");
        VectorFdParams { n, t }
    }

    /// Automaton rounds (same as one chain FD run): `t + 2`.
    pub fn rounds(&self) -> u32 {
        self.t as u32 + 2
    }

    /// Node occupying `position` of `instance`.
    pub fn node_at(&self, instance: NodeId, position: usize) -> NodeId {
        NodeId(((instance.index() + position) % self.n) as u16)
    }

    /// Position of `node` within `instance` (0 = sender).
    pub fn position_of(&self, instance: NodeId, node: NodeId) -> usize {
        (node.index() + self.n - instance.index()) % self.n
    }
}

/// Honest participant of the interactive-consistency protocol.
pub struct VectorFdNode {
    me: NodeId,
    params: VectorFdParams,
    scheme: Arc<dyn SignatureScheme>,
    store: KeyStore,
    keyring: Keyring,
    /// This node's own input value (it is the sender of instance `me`).
    value: Vec<u8>,
    /// Per-instance outcome.
    outcomes: Vec<Outcome>,
    /// Node-level discovery (malformed/unattributable traffic): poisons
    /// every still-pending instance, since the node's whole view differs
    /// from every failure-free run.
    node_discovery: Option<DiscoveryReason>,
    done: bool,
}

impl VectorFdNode {
    /// Create the automaton for node `me` with its input `value`.
    pub fn new(
        me: NodeId,
        params: VectorFdParams,
        scheme: Arc<dyn SignatureScheme>,
        store: KeyStore,
        keyring: Keyring,
        value: Vec<u8>,
    ) -> Self {
        let n = params.n;
        VectorFdNode {
            me,
            params,
            scheme,
            store,
            keyring,
            value,
            outcomes: vec![Outcome::Pending; n],
            node_discovery: None,
            done: false,
        }
    }

    /// The per-instance outcomes (index = instance sender id).
    pub fn outcomes(&self) -> &[Outcome] {
        &self.outcomes
    }

    /// The decided vector, if every instance decided.
    pub fn vector(&self) -> Option<Vec<Vec<u8>>> {
        self.outcomes
            .iter()
            .map(|o| o.decided().map(<[u8]>::to_vec))
            .collect()
    }

    fn discover_instance(&mut self, instance: NodeId, reason: DiscoveryReason) {
        if !self.outcomes[instance.index()].is_terminal() {
            self.outcomes[instance.index()] = Outcome::Discovered(reason);
        }
    }

    fn discover_node(&mut self, reason: DiscoveryReason) {
        self.node_discovery.get_or_insert(reason);
    }

    /// Structural validity of a chain for `instance` with the expected
    /// number of layers: origin and signer sequence must follow the
    /// rotation.
    fn structure_ok(
        &self,
        instance: NodeId,
        chain: &ChainMessage,
        from: NodeId,
        expected_layers: usize,
    ) -> bool {
        if chain.origin != instance || chain.layers.len() != expected_layers {
            return false;
        }
        chain
            .signer_sequence(from)
            .iter()
            .enumerate()
            .all(|(j, s)| *s == self.params.node_at(instance, j))
    }

    fn handle_msg(&mut self, round: u32, env: &Envelope, out: &mut Outbox) {
        let msg = match VecMsg::decode_exact(&env.payload) {
            Ok(m) => m,
            Err(_) => return self.discover_node(DiscoveryReason::Malformed),
        };
        let instance = msg.instance;
        if instance.index() >= self.params.n {
            return self.discover_node(DiscoveryReason::Malformed);
        }
        let my_pos = self.params.position_of(instance, self.me);
        // When should this instance reach me, and from whom?
        let (expected_round, expected_from, expected_layers) = if (1..=self.params.t)
            .contains(&my_pos)
        {
            (
                my_pos as u32,
                self.params.node_at(instance, my_pos - 1),
                my_pos - 1,
            )
        } else if my_pos > self.params.t {
            (
                self.params.t as u32 + 1,
                self.params.node_at(instance, self.params.t),
                self.params.t,
            )
        } else {
            // I am the sender of this instance: nothing should arrive.
            return self.discover_instance(instance, DiscoveryReason::UnexpectedMessage { round });
        };
        if round != expected_round
            || env.from != expected_from
            || self.outcomes[instance.index()].is_terminal()
        {
            return self.discover_instance(instance, DiscoveryReason::UnexpectedMessage { round });
        }
        if !self.structure_ok(instance, &msg.chain, env.from, expected_layers) {
            return self.discover_instance(instance, DiscoveryReason::BadStructure);
        }
        match msg
            .chain
            .verify_cached(self.scheme.as_ref(), &self.store, env.from)
        {
            Ok(_) => {
                let v = msg.chain.body.clone();
                if (1..=self.params.t).contains(&my_pos) {
                    let extended = msg
                        .chain
                        .extend(self.scheme.as_ref(), &self.keyring.sk, env.from)
                        .expect("own keyring well-formed");
                    let payload: Payload = VecMsg {
                        instance,
                        chain: extended,
                    }
                    .encode_to_vec()
                    .into();
                    if my_pos < self.params.t {
                        out.send(self.params.node_at(instance, my_pos + 1), payload);
                    } else {
                        for pos in (self.params.t + 1)..self.params.n {
                            out.send(self.params.node_at(instance, pos), payload.clone());
                        }
                    }
                }
                self.outcomes[instance.index()] = Outcome::Decided(v);
            }
            Err(reason) => self.discover_instance(instance, reason),
        }
    }
}

impl Node for VectorFdNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done {
            if !inbox.is_empty() {
                self.discover_node(DiscoveryReason::UnexpectedMessage { round });
            }
            return;
        }
        // Round 0: originate my own instance.
        if round == 0 {
            let chain = ChainMessage::originate(
                self.scheme.as_ref(),
                &self.keyring.sk,
                self.me,
                self.value.clone(),
            )
            .expect("own keyring well-formed");
            let payload: Payload = VecMsg {
                instance: self.me,
                chain,
            }
            .encode_to_vec()
            .into();
            if self.params.t == 0 {
                for pos in 1..self.params.n {
                    out.send(self.params.node_at(self.me, pos), payload.clone());
                }
            } else {
                out.send(self.params.node_at(self.me, 1), payload);
            }
            self.outcomes[self.me.index()] = Outcome::Decided(self.value.clone());
        }

        for env in &inbox.to_vec() {
            self.handle_msg(round, env, out);
        }

        // Deadline checks: any instance due this round that is still
        // pending means its message never arrived.
        for s in 0..self.params.n {
            let instance = NodeId(s as u16);
            if self.outcomes[s].is_terminal() {
                continue;
            }
            let my_pos = self.params.position_of(instance, self.me);
            let due = if (1..=self.params.t).contains(&my_pos) {
                my_pos as u32
            } else {
                self.params.t as u32 + 1
            };
            if round >= due {
                self.discover_instance(instance, DiscoveryReason::MissingMessage { round });
            }
        }

        if round + 1 >= self.params.rounds() {
            // Apply node-level discovery to every instance, then finish.
            if let Some(reason) = self.node_discovery.take() {
                for s in 0..self.params.n {
                    self.outcomes[s] = Outcome::Discovered(reason.clone());
                }
            }
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for VectorFdNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("VectorFdNode")
            .field("me", &self.me)
            .field(
                "decided",
                &self
                    .outcomes
                    .iter()
                    .filter(|o| o.decided().is_some())
                    .count(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_crypto::SchnorrScheme;
    use fd_simnet::SyncNetwork;

    fn build(n: usize, t: usize) -> Vec<Box<dyn Node>> {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(scheme.as_ref(), NodeId(i as u16), 15))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(VectorFdNode::new(
                    me,
                    VectorFdParams::new(n, t),
                    Arc::clone(&scheme),
                    KeyStore::global(me, &pks),
                    rings[i].clone(),
                    vec![i as u8, 0xAB],
                )) as Box<dyn Node>
            })
            .collect()
    }

    fn run(n: usize, t: usize) -> (Vec<VectorFdNode>, usize) {
        let mut net = SyncNetwork::new(build(n, t));
        net.run_until_done(VectorFdParams::new(n, t).rounds());
        let msgs = net.stats().messages_total;
        let nodes = net
            .into_nodes()
            .into_iter()
            .map(|b| {
                *b.into_any()
                    .downcast::<VectorFdNode>()
                    .expect("VectorFdNode")
            })
            .collect();
        (nodes, msgs)
    }

    #[test]
    fn honest_run_everyone_gets_the_full_vector() {
        for (n, t) in [(4usize, 1usize), (5, 2), (7, 2), (4, 0)] {
            let (nodes, msgs) = run(n, t);
            assert_eq!(msgs, n * (n - 1), "n={n} t={t}: n parallel FD runs");
            let expected: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, 0xAB]).collect();
            for node in &nodes {
                assert_eq!(
                    node.vector().expect("all decided"),
                    expected,
                    "n={n} t={t} node {}",
                    node.me
                );
            }
        }
    }

    #[test]
    fn rounds_match_single_instance() {
        let (n, t) = (6usize, 2usize);
        let mut net = SyncNetwork::new(build(n, t));
        net.run_until_done(VectorFdParams::new(n, t).rounds());
        assert_eq!(
            net.stats().per_round.iter().filter(|&&c| c > 0).count(),
            t + 1
        );
    }

    #[test]
    fn dropped_link_discovers_only_affected_instances() {
        let (n, t) = (5usize, 1usize);
        let mut net = SyncNetwork::new(build(n, t));
        // Kill instance-0's chain hop P0 -> P1 in round 0.
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(1),
            fd_simnet::fault::LinkFault::Drop,
        ));
        net.run_until_done(VectorFdParams::new(n, t).rounds());
        let nodes: Vec<VectorFdNode> = net
            .into_nodes()
            .into_iter()
            .map(|b| *b.into_any().downcast::<VectorFdNode>().unwrap())
            .collect();
        // Instance 0 is discovered at P1.. (chain broken); other instances
        // decide everywhere.
        assert!(nodes[1].outcomes()[0].is_discovered());
        for s in 1..n {
            for node in &nodes {
                assert_eq!(
                    node.outcomes()[s].decided(),
                    Some(&[s as u8, 0xAB][..]),
                    "instance {s} at {}",
                    node.me
                );
            }
        }
    }

    #[test]
    fn rotation_mapping_is_consistent() {
        let p = VectorFdParams::new(7, 2);
        for s in 0..7u16 {
            for pos in 0..7usize {
                let node = p.node_at(NodeId(s), pos);
                assert_eq!(p.position_of(NodeId(s), node), pos);
            }
        }
    }

    #[test]
    fn codec_round_trip() {
        let scheme = SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(3), 1);
        let chain = ChainMessage::originate(&scheme, &ring.sk, NodeId(3), vec![7]).unwrap();
        let msg = VecMsg {
            instance: NodeId(3),
            chain,
        };
        assert_eq!(VecMsg::decode_exact(&msg.encode_to_vec()).unwrap(), msg);
    }
}
