//! The non-authenticated failure-discovery baseline: witness relay.
//!
//! The paper cites Hadzilacos–Halpern for the bound that non-authenticated
//! FD under arbitrary failures needs `O(n·t)` messages. Their concrete
//! protocol is not listed in this paper, so the reproduction uses the
//! following witness-relay protocol with `(t + 2)(n − 1) = O(n·t)` messages
//! (substitution documented in DESIGN.md §2):
//!
//! ```text
//! round 0:  P_0 → all:            v                 (n − 1 messages)
//! round 1:  P_w → all, w = 1..=t+1: relay(v_w)      ((t+1)(n − 1) messages)
//! round 2:  every node decides its direct value iff it received exactly
//!           one direct value and every witness relayed that same value;
//!           any deviation ⇒ discover failure.
//! ```
//!
//! **Why F1–F3 hold** (sketch): F1 — every node terminates at round 2.
//! F2 — among the `t + 1` witnesses at least one, `W`, is correct; `W`
//! relays one value `w` to *all* nodes; a correct node only decides a value
//! equal to every relay it received, hence equal to `w`; so all correct
//! deciders agree. F3 — a correct sender gives every node and witness the
//! same `v`, so `w = v`. No signatures anywhere — this is the baseline the
//! paper's `O(n)` authenticated protocol beats.

use crate::outcome::{DiscoveryReason, Outcome};
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;

/// Wire messages of the witness-relay protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaMsg {
    /// Round 0: the sender's value.
    Direct {
        /// The proposed value.
        value: Vec<u8>,
    },
    /// Round 1: a witness's relay of what it received.
    Relay {
        /// `Some(v)` if the witness received exactly one direct value;
        /// `None` if it received none (a failure it reports by relaying
        /// the gap rather than staying silent).
        value: Option<Vec<u8>>,
    },
}

const TAG_DIRECT: u8 = 0x20;
const TAG_RELAY_SOME: u8 = 0x21;
const TAG_RELAY_NONE: u8 = 0x22;

impl Encode for NaMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            NaMsg::Direct { value } => {
                w.put_u8(TAG_DIRECT);
                w.put_bytes(value);
            }
            NaMsg::Relay { value: Some(v) } => {
                w.put_u8(TAG_RELAY_SOME);
                w.put_bytes(v);
            }
            NaMsg::Relay { value: None } => w.put_u8(TAG_RELAY_NONE),
        }
    }
}

impl Decode for NaMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_DIRECT => Ok(NaMsg::Direct {
                value: r.get_bytes()?.to_vec(),
            }),
            TAG_RELAY_SOME => Ok(NaMsg::Relay {
                value: Some(r.get_bytes()?.to_vec()),
            }),
            TAG_RELAY_NONE => Ok(NaMsg::Relay { value: None }),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Static parameters of a witness-relay run.
#[derive(Debug, Clone)]
pub struct NonAuthParams {
    /// System size.
    pub n: usize,
    /// Tolerated faults; witnesses are `P_1 … P_{t+1}`.
    pub t: usize,
    /// Designated sender.
    pub sender: NodeId,
}

impl NonAuthParams {
    /// Standard parameters with `P_0` as sender.
    ///
    /// # Panics
    ///
    /// Panics unless `t + 2 <= n` (sender plus `t + 1` witnesses must fit).
    pub fn new(n: usize, t: usize) -> Self {
        assert!(t + 2 <= n, "need sender plus t+1 witnesses inside n nodes");
        NonAuthParams {
            n,
            t,
            sender: NodeId(0),
        }
    }

    /// Automaton rounds: sends in rounds 0–1, decision in round 2.
    pub fn rounds(&self) -> u32 {
        3
    }

    /// Is `node` one of the `t + 1` witnesses?
    pub fn is_witness(&self, node: NodeId) -> bool {
        let i = node.index();
        i >= 1 && i <= self.t + 1
    }
}

/// Honest participant in the witness-relay protocol.
pub struct NonAuthFdNode {
    me: NodeId,
    params: NonAuthParams,
    /// `Some(v)` on the sender.
    value: Option<Vec<u8>>,
    /// Direct values received in round 1 (should be exactly one).
    direct: Vec<Vec<u8>>,
    /// Relays received per witness index.
    relays: Vec<Option<NaMsg>>,
    malformed_seen: bool,
    outcome: Outcome,
    done: bool,
}

impl NonAuthFdNode {
    /// Create the automaton for node `me`; `value` is `Some` exactly on the
    /// sender.
    ///
    /// # Panics
    ///
    /// Panics if value presence contradicts the sender role.
    pub fn new(me: NodeId, params: NonAuthParams, value: Option<Vec<u8>>) -> Self {
        assert_eq!(
            me == params.sender,
            value.is_some(),
            "exactly the sender carries the initial value"
        );
        let n = params.n;
        NonAuthFdNode {
            me,
            params,
            value,
            direct: Vec::new(),
            relays: vec![None; n],
            malformed_seen: false,
            outcome: Outcome::Pending,
            done: false,
        }
    }

    /// The node's outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    fn my_direct_value(&self) -> Option<Vec<u8>> {
        if self.me == self.params.sender {
            return self.value.clone();
        }
        (self.direct.len() == 1).then(|| self.direct[0].clone())
    }

    fn decide(&mut self, round: u32) {
        if self.malformed_seen {
            self.outcome = Outcome::Discovered(DiscoveryReason::Malformed);
        } else if let Some(v) = self.my_direct_value() {
            let mut ok = true;
            for w in 1..=self.params.t + 1 {
                match &self.relays[w] {
                    Some(NaMsg::Relay { value: Some(rv) }) if *rv == v => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                self.outcome = Outcome::Decided(v);
            } else {
                self.outcome = Outcome::Discovered(DiscoveryReason::Equivocation);
            }
        } else if self.direct.len() > 1 {
            self.outcome = Outcome::Discovered(DiscoveryReason::UnexpectedMessage { round });
        } else {
            self.outcome = Outcome::Discovered(DiscoveryReason::MissingMessage { round });
        }
        self.done = true;
    }
}

impl Node for NonAuthFdNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done {
            if !inbox.is_empty() && !self.outcome.is_discovered() {
                self.outcome = Outcome::Discovered(DiscoveryReason::UnexpectedMessage { round });
            }
            return;
        }
        match round {
            0 => {
                if self.me == self.params.sender {
                    let v = self.value.clone().expect("sender value");
                    out.broadcast(
                        self.params.n,
                        self.me,
                        NaMsg::Direct { value: v }.encode_to_vec(),
                    );
                }
            }
            1 => {
                // Collect direct values; witnesses relay.
                for env in inbox {
                    match NaMsg::decode_exact(&env.payload) {
                        Ok(NaMsg::Direct { value }) if env.from == self.params.sender => {
                            self.direct.push(value)
                        }
                        _ => self.malformed_seen = true,
                    }
                }
                if self.params.is_witness(self.me) {
                    let relay = NaMsg::Relay {
                        value: self.my_direct_value(),
                    };
                    out.broadcast(self.params.n, self.me, relay.encode_to_vec());
                    // A witness also "relays to itself".
                    self.relays[self.me.index()] = Some(relay);
                }
            }
            2 => {
                for env in inbox {
                    if !self.params.is_witness(env.from) {
                        self.malformed_seen = true;
                        continue;
                    }
                    match NaMsg::decode_exact(&env.payload) {
                        Ok(msg @ NaMsg::Relay { .. }) => {
                            let slot = &mut self.relays[env.from.index()];
                            if slot.is_some() {
                                self.malformed_seen = true; // duplicate relay
                            } else {
                                *slot = Some(msg);
                            }
                        }
                        _ => self.malformed_seen = true,
                    }
                }
                self.decide(round);
            }
            _ => {
                if !inbox.is_empty() {
                    self.outcome =
                        Outcome::Discovered(DiscoveryReason::UnexpectedMessage { round });
                    self.done = true;
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for NonAuthFdNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("NonAuthFdNode")
            .field("me", &self.me)
            .field("outcome", &self.outcome)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_simnet::SyncNetwork;

    fn build(n: usize, t: usize, value: &[u8]) -> Vec<Box<dyn Node>> {
        (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(NonAuthFdNode::new(
                    me,
                    NonAuthParams::new(n, t),
                    (i == 0).then(|| value.to_vec()),
                )) as Box<dyn Node>
            })
            .collect()
    }

    fn outcomes(net: SyncNetwork) -> Vec<Outcome> {
        net.into_nodes()
            .into_iter()
            .map(|b| {
                b.into_any()
                    .downcast::<NonAuthFdNode>()
                    .expect("NonAuthFdNode")
                    .outcome
            })
            .collect()
    }

    #[test]
    fn failure_free_costs_t_plus_2_times_n_minus_1() {
        for (n, t) in [(4usize, 1usize), (7, 2), (10, 3), (5, 0)] {
            let mut net = SyncNetwork::new(build(n, t, b"v"));
            net.run_until_done(NonAuthParams::new(n, t).rounds());
            assert_eq!(net.stats().messages_total, (t + 2) * (n - 1), "n={n} t={t}");
            for o in outcomes(net) {
                assert_eq!(o, Outcome::Decided(b"v".to_vec()));
            }
        }
    }

    #[test]
    fn two_communication_rounds() {
        let mut net = SyncNetwork::new(build(6, 2, b"v"));
        net.run_until_done(3);
        assert_eq!(net.stats().per_round.iter().filter(|&&c| c > 0).count(), 2);
    }

    #[test]
    fn dropped_direct_value_discovered() {
        let (n, t) = (5usize, 1usize);
        let mut net = SyncNetwork::new(build(n, t, b"v"));
        // Sender's message to P3 is lost: P3 must discover, others decide.
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(3),
            fd_simnet::fault::LinkFault::Drop,
        ));
        net.run_until_done(3);
        let outs = outcomes(net);
        assert!(outs[3].is_discovered());
        assert_eq!(outs[1], Outcome::Decided(b"v".to_vec()));
    }

    #[test]
    fn dropped_relay_discovered() {
        let (n, t) = (5usize, 1usize);
        let mut net = SyncNetwork::new(build(n, t, b"v"));
        // Witness P1's relay to P4 lost: P4 discovers.
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            1,
            NodeId(1),
            NodeId(4),
            fd_simnet::fault::LinkFault::Drop,
        ));
        net.run_until_done(3);
        let outs = outcomes(net);
        assert!(outs[4].is_discovered());
    }

    #[test]
    fn corrupted_relay_discovered() {
        let (n, t) = (5usize, 2usize);
        let mut net = SyncNetwork::new(build(n, t, b"vv"));
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            1,
            NodeId(2),
            NodeId(4),
            fd_simnet::fault::LinkFault::Corrupt {
                offset: 5,
                mask: 0x80,
            },
        ));
        net.run_until_done(3);
        let outs = outcomes(net);
        assert!(outs[4].is_discovered());
    }

    #[test]
    fn codec_round_trips() {
        for msg in [
            NaMsg::Direct { value: vec![1, 2] },
            NaMsg::Relay {
                value: Some(vec![3]),
            },
            NaMsg::Relay { value: None },
        ] {
            assert_eq!(NaMsg::decode_exact(&msg.encode_to_vec()).unwrap(), msg);
        }
        assert!(NaMsg::decode_exact(&[0x99]).is_err());
    }

    #[test]
    #[should_panic(expected = "witnesses inside n")]
    fn too_many_witnesses_rejected() {
        let _ = NonAuthParams::new(3, 2);
    }
}
