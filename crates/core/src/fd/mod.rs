//! Failure Discovery protocols (paper §4–§5).
//!
//! The Failure Discovery problem (Hadzilacos & Halpern) asks for, in the
//! presence of up to `t` byzantine nodes:
//!
//! * **F1 (weak termination)** — every correct node eventually decides a
//!   value *or* discovers a failure;
//! * **F2 (weak agreement)** — if no correct node discovers a failure, no
//!   two correct nodes decide differently;
//! * **F3 (weak validity)** — if no correct node discovers a failure and
//!   the sender is correct, every correct node decides the sender's value.
//!
//! Three protocols are provided:
//!
//! | protocol | auth | messages (failure-free) | comm. rounds |
//! |---|---|---|---|
//! | [`ChainFdNode`] (paper Fig. 2) | signatures | `n − 1` | `t + 1` |
//! | [`NonAuthFdNode`] (witness relay) | none | `(t + 2)(n − 1)` | `2` |
//! | [`SmallRangeFdNode`] | signatures | `0` for the default value | `2` |
//!
//! The headline of the paper: after one `3n(n−1)`-message key distribution,
//! every subsequent run costs `n − 1` instead of `O(n·t)` — and by
//! Theorems 2/4 the *local* authentication established there is enough.

mod chain_fd;
mod non_auth;
mod small_range;
mod vector;

pub use chain_fd::{ChainFdNode, ChainFdParams, FdMsg};
pub use non_auth::{NaMsg, NonAuthFdNode, NonAuthParams};
pub use small_range::{SmallRangeFdNode, SmallRangeParams, SrMsg};
pub use vector::{VecMsg, VectorFdNode, VectorFdParams};
