//! The authenticated chain failure-discovery protocol (paper Fig. 2).
//!
//! ```text
//! P_0:            send {v}_{S_0} to P_1
//! P_i (1≤i<t):    receive the chain from P_{i-1}; check all signatures and
//!                 submessages; on failure discover and stop; else accept v
//!                 and send {P_{i-1}, chain}_{S_i} to P_{i+1}
//! P_t:            same check; then disseminate {P_{t-1}, chain}_{S_t} to
//!                 P_{t+1} … P_{n-1}
//! P_j (j>t):      check; accept v or discover
//! ```
//!
//! `n − 1` messages, `t + 1` communication rounds — the minimum for the
//! problem (cf. Baum-Waidner, cited by the paper). With `t = 0` the sender
//! disseminates directly.
//!
//! Every node knows exactly what a failure-free run looks like from its own
//! viewpoint (which message, with which chain structure, in which round),
//! so *any* deviation — missing message, extra message, malformed payload,
//! bad signature, wrong embedded name — is discovered (property F1's second
//! disjunct). Signature checking follows the Theorem 4 discipline in
//! [`crate::chain`], which is what makes the protocol sound under **local**
//! authentication.

use crate::chain::ChainMessage;
use crate::keys::{KeyStore, Keyring};
use crate::outcome::{DiscoveryReason, Outcome};
use fd_crypto::SignatureScheme;
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox, Payload};
use std::any::Any;
use std::sync::Arc;

/// Wire message of the chain FD protocol: a chain-signed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdMsg {
    /// The chain-signed value.
    pub chain: ChainMessage,
}

const TAG_FD_CHAIN: u8 = 0x10;

impl Encode for FdMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TAG_FD_CHAIN);
        self.chain.encode(w);
    }
}

impl Decode for FdMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_FD_CHAIN => Ok(FdMsg {
                chain: ChainMessage::decode(r)?,
            }),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Static parameters of a chain FD run.
#[derive(Debug, Clone)]
pub struct ChainFdParams {
    /// System size.
    pub n: usize,
    /// Tolerated faults; the chain passes through `P_1 … P_t`.
    pub t: usize,
    /// Designated sender (`P_0` in the paper; configurable here).
    pub sender: NodeId,
}

impl ChainFdParams {
    /// Standard parameters with `P_0` as sender.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 2` and `t <= n - 2` (the chain plus at least one
    /// disseminated node must fit).
    pub fn new(n: usize, t: usize) -> Self {
        assert!(n >= 2, "need at least a sender and a receiver");
        assert!(t + 2 <= n, "chain P_0..P_t plus a recipient must fit in n");
        ChainFdParams {
            n,
            t,
            sender: NodeId(0),
        }
    }

    /// Automaton rounds needed: sends happen in rounds `0..=t`, the last
    /// delivery is processed in round `t + 1`.
    pub fn rounds(&self) -> u32 {
        self.t as u32 + 2
    }

    /// Chain position of a node: `Some(i)` if the node is `P_i` with
    /// `1 <= i <= t`, i.e. a chain relay.
    fn chain_position(&self, me: NodeId) -> Option<usize> {
        let i = me.index();
        (i >= 1 && i <= self.t).then_some(i)
    }
}

/// Honest participant in the chain FD protocol.
pub struct ChainFdNode {
    me: NodeId,
    params: ChainFdParams,
    scheme: Arc<dyn SignatureScheme>,
    store: KeyStore,
    keyring: Keyring,
    /// `Some(v)` on the sender.
    value: Option<Vec<u8>>,
    outcome: Outcome,
    done: bool,
}

impl ChainFdNode {
    /// Create the automaton for node `me`. `value` must be `Some` exactly
    /// on the sender.
    ///
    /// # Panics
    ///
    /// Panics if the value presence contradicts the sender role.
    pub fn new(
        me: NodeId,
        params: ChainFdParams,
        scheme: Arc<dyn SignatureScheme>,
        store: KeyStore,
        keyring: Keyring,
        value: Option<Vec<u8>>,
    ) -> Self {
        assert_eq!(
            me == params.sender,
            value.is_some(),
            "exactly the sender carries the initial value"
        );
        ChainFdNode {
            me,
            params,
            scheme,
            store,
            keyring,
            value,
            outcome: Outcome::Pending,
            done: false,
        }
    }

    /// The node's outcome (terminal once the run finished).
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    fn discover(&mut self, reason: DiscoveryReason) {
        self.outcome = Outcome::Discovered(reason);
        self.done = true;
    }

    /// Which round this node expects its (single) incoming message in.
    fn expected_round(&self) -> Option<u32> {
        if self.me == self.params.sender {
            return None;
        }
        match self.params.chain_position(self.me) {
            Some(i) => Some(i as u32),
            // Disseminated nodes hear from P_t in round t + 1 (or from the
            // sender in round 1 when t = 0).
            None => Some(self.params.t as u32 + 1),
        }
    }

    /// Expected immediate sender of the incoming message.
    fn expected_from(&self) -> NodeId {
        match self.params.chain_position(self.me) {
            Some(i) => NodeId(i as u16 - 1),
            None => NodeId(self.params.t as u16),
        }
    }

    /// Validate chain structure: origin is the sender, signer sequence is
    /// exactly `P_0, P_1, …` up to the expected length.
    fn structure_ok(&self, chain: &ChainMessage, from: NodeId, expected_layers: usize) -> bool {
        if chain.origin != self.params.sender || chain.layers.len() != expected_layers {
            return false;
        }
        let signers = chain.signer_sequence(from);
        signers.iter().enumerate().all(|(i, s)| s.index() == i)
    }

    fn handle_chain(&mut self, env: &Envelope, out: &mut Outbox) {
        let msg = match FdMsg::decode_exact(&env.payload) {
            Ok(m) => m,
            Err(_) => return self.discover(DiscoveryReason::Malformed),
        };
        // A relay at position i receives i-1 layers; a disseminated node
        // receives the full t layers (0 layers when t = 0).
        let expected_layers = match self.params.chain_position(self.me) {
            Some(i) => i - 1,
            None => self.params.t,
        };
        if !self.structure_ok(&msg.chain, env.from, expected_layers) {
            return self.discover(DiscoveryReason::BadStructure);
        }
        match msg
            .chain
            .verify_cached(self.scheme.as_ref(), &self.store, env.from)
        {
            Ok(_assignee) => {
                let v = msg.chain.body.clone();
                if let Some(i) = self.params.chain_position(self.me) {
                    // Relay: sign (previous assignee ‖ chain) and forward.
                    let extended = msg
                        .chain
                        .extend(self.scheme.as_ref(), &self.keyring.sk, env.from)
                        .expect("own keyring is well-formed");
                    let payload: Payload = FdMsg { chain: extended }.encode_to_vec().into();
                    if i < self.params.t {
                        out.send(NodeId(i as u16 + 1), payload);
                    } else {
                        // P_t disseminates to P_{t+1} … P_{n-1}, sharing
                        // one payload buffer across all recipients.
                        for j in (self.params.t + 1)..self.params.n {
                            out.send(NodeId(j as u16), payload.clone());
                        }
                    }
                }
                self.outcome = Outcome::Decided(v);
                self.done = true;
            }
            Err(reason) => self.discover(reason),
        }
    }
}

impl Node for ChainFdNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done {
            // A terminated node still notices protocol-violating traffic.
            if !inbox.is_empty() && !self.outcome.is_discovered() {
                self.discover(DiscoveryReason::UnexpectedMessage { round });
            }
            return;
        }
        // Sender initiates in round 0.
        if round == 0 && self.me == self.params.sender {
            let v = self.value.clone().expect("sender carries the value");
            let chain =
                ChainMessage::originate(self.scheme.as_ref(), &self.keyring.sk, self.me, v.clone())
                    .expect("own keyring is well-formed");
            let payload: Payload = FdMsg { chain }.encode_to_vec().into();
            if self.params.t == 0 {
                for j in 1..self.params.n {
                    out.send(NodeId(j as u16), payload.clone());
                }
            } else {
                out.send(NodeId(1), payload);
            }
            self.outcome = Outcome::Decided(v);
            self.done = true;
            return;
        }

        let expected = self.expected_round().expect("non-senders expect a message");
        if round == expected {
            // Exactly one message from the expected predecessor.
            match inbox {
                [] => self.discover(DiscoveryReason::MissingMessage { round }),
                [env] if env.from == self.expected_from() => self.handle_chain(&env.clone(), out),
                _ => self.discover(DiscoveryReason::UnexpectedMessage { round }),
            }
        } else if !inbox.is_empty() {
            self.discover(DiscoveryReason::UnexpectedMessage { round });
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for ChainFdNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChainFdNode")
            .field("me", &self.me)
            .field("outcome", &self.outcome)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_crypto::SchnorrScheme;
    use fd_simnet::SyncNetwork;

    fn build_cluster(
        n: usize,
        t: usize,
        value: &[u8],
    ) -> (Vec<Box<dyn Node>>, Arc<dyn SignatureScheme>) {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(scheme.as_ref(), NodeId(i as u16), 5))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(ChainFdNode::new(
                    me,
                    ChainFdParams::new(n, t),
                    Arc::clone(&scheme),
                    KeyStore::global(me, &pks),
                    rings[i].clone(),
                    (i == 0).then(|| value.to_vec()),
                )) as Box<dyn Node>
            })
            .collect();
        (nodes, scheme)
    }

    fn outcomes(net: SyncNetwork) -> Vec<Outcome> {
        net.into_nodes()
            .into_iter()
            .map(|b| {
                b.into_any()
                    .downcast::<ChainFdNode>()
                    .expect("ChainFdNode")
                    .outcome
            })
            .collect()
    }

    #[test]
    fn failure_free_run_all_decide() {
        for (n, t) in [(4usize, 1usize), (5, 2), (7, 2), (6, 0), (5, 3)] {
            let (nodes, _) = build_cluster(n, t, b"attack");
            let mut net = SyncNetwork::new(nodes);
            let params = ChainFdParams::new(n, t);
            net.run_until_done(params.rounds());
            assert_eq!(
                net.stats().messages_total,
                n - 1,
                "n={n} t={t}: paper claims n-1 messages"
            );
            for (i, o) in outcomes(net).into_iter().enumerate() {
                assert_eq!(
                    o,
                    Outcome::Decided(b"attack".to_vec()),
                    "node {i} n={n} t={t}"
                );
            }
        }
    }

    #[test]
    fn communication_rounds_are_t_plus_1() {
        let (n, t) = (7usize, 3usize);
        let (nodes, _) = build_cluster(n, t, b"v");
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(ChainFdParams::new(n, t).rounds());
        let active_rounds = net.stats().per_round.iter().filter(|&&c| c > 0).count();
        assert_eq!(active_rounds, t + 1);
    }

    #[test]
    fn missing_message_discovered() {
        // Drop P0 -> P1: P1 (and transitively everyone) must discover.
        let (n, t) = (5usize, 2usize);
        let (nodes, _) = build_cluster(n, t, b"v");
        let mut net = SyncNetwork::new(nodes);
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(1),
            fd_simnet::fault::LinkFault::Drop,
        ));
        net.run_until_done(ChainFdParams::new(n, t).rounds());
        let outs = outcomes(net);
        // Sender decided (it saw nothing wrong); every other correct node
        // discovered the missing chain.
        assert!(outs[1..].iter().all(|o| o.is_discovered()));
    }

    #[test]
    fn corrupted_chain_discovered() {
        let (n, t) = (5usize, 1usize);
        let (nodes, _) = build_cluster(n, t, b"v");
        let mut net = SyncNetwork::new(nodes);
        // Flip one byte inside P0's chain message to P1 (beyond the tag).
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(1),
            fd_simnet::fault::LinkFault::Corrupt {
                offset: 20,
                mask: 0x01,
            },
        ));
        net.run_until_done(ChainFdParams::new(n, t).rounds());
        let outs = outcomes(net);
        assert!(outs[1].is_discovered(), "P1 must notice the corruption");
    }

    #[test]
    fn duplicate_message_discovered() {
        let (n, t) = (4usize, 1usize);
        let (nodes, _) = build_cluster(n, t, b"v");
        let mut net = SyncNetwork::new(nodes);
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            0,
            NodeId(0),
            NodeId(1),
            fd_simnet::fault::LinkFault::Duplicate,
        ));
        net.run_until_done(ChainFdParams::new(n, t).rounds());
        let outs = outcomes(net);
        assert_eq!(
            outs[1],
            Outcome::Discovered(DiscoveryReason::UnexpectedMessage { round: 1 })
        );
    }

    #[test]
    #[should_panic(expected = "chain P_0..P_t plus a recipient")]
    fn t_too_large_rejected() {
        let _ = ChainFdParams::new(4, 3);
    }

    #[test]
    fn msg_codec_round_trip() {
        let scheme = SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(0), 1);
        let chain = ChainMessage::originate(&scheme, &ring.sk, NodeId(0), b"x".to_vec()).unwrap();
        let msg = FdMsg { chain };
        assert_eq!(FdMsg::decode_exact(&msg.encode_to_vec()).unwrap(), msg);
        assert!(FdMsg::decode_exact(&[0xee]).is_err());
    }
}
