//! Small-value-range failure discovery: silence encodes the default.
//!
//! The paper (§5) notes that when the value range is small and known a
//! priori, "solutions with fewer messages are possible by assigning values
//! to missing messages", citing Hadzilacos–Halpern's message-optimal
//! protocols. Those protocols are not listed in this paper; the
//! reproduction implements the following sound silence-as-default variant
//! (substitution documented in DESIGN.md §2):
//!
//! ```text
//! if v = default:   nobody sends anything; every node decides `default`
//!                   after observing silence through round 2.   (0 messages)
//! if v ≠ default:
//!   round 0:  P_0 → all:    {v}_{S_0}                          (n − 1)
//!   round 1:  P_w → all:    {P_0, {v}_{S_0}}_{S_w}, w = 1..=t+1
//!                           (each witness echoes a chain-extension)
//!   round 2:  a node decides v iff the direct chain and ALL t+1 witness
//!             echoes arrived and carry the same v; decides default iff it
//!             saw complete silence; anything else ⇒ discover.
//! ```
//!
//! **Why F2 holds with silence:** a correct node deciding `v ≠ default` saw
//! `t + 1` valid witness echoes, so at least one echo came from a *correct*
//! witness, which sent the same echo to every node; hence no correct node
//! saw complete silence, so none decided `default`. Conversely all-silent
//! correct nodes imply no correct witness echoed, which implies no correct
//! node can have collected `t + 1` echoes... (one of which would be from a
//! correct witness). Validity and termination are immediate.
//!
//! The win is *workload-dependent*: runs with the default value cost 0
//! messages instead of `n − 1` (experiment T5 quantifies the crossover
//! against [`super::ChainFdNode`] as a function of the default-value
//! probability).

use crate::chain::ChainMessage;
use crate::keys::{KeyStore, Keyring};
use crate::outcome::{DiscoveryReason, Outcome};
use fd_crypto::SignatureScheme;
use fd_simnet::codec::{CodecError, Decode, Encode, Reader, Writer};
use fd_simnet::{Envelope, Node, NodeId, Outbox};
use std::any::Any;
use std::sync::Arc;

/// Wire message: a chain-signed value (bare from the sender, one layer
/// from a witness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrMsg {
    /// The chain-signed non-default value.
    pub chain: ChainMessage,
}

const TAG_SR: u8 = 0x30;

impl Encode for SrMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TAG_SR);
        self.chain.encode(w);
    }
}

impl Decode for SrMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            TAG_SR => Ok(SrMsg {
                chain: ChainMessage::decode(r)?,
            }),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Static parameters of a small-range FD run.
#[derive(Debug, Clone)]
pub struct SmallRangeParams {
    /// System size.
    pub n: usize,
    /// Tolerated faults; witnesses are `P_1 … P_{t+1}`.
    pub t: usize,
    /// Designated sender.
    pub sender: NodeId,
    /// The a-priori-known default value that silence encodes.
    pub default_value: Vec<u8>,
}

impl SmallRangeParams {
    /// Standard parameters with `P_0` as sender and the given default.
    ///
    /// # Panics
    ///
    /// Panics unless `t + 2 <= n`.
    pub fn new(n: usize, t: usize, default_value: Vec<u8>) -> Self {
        assert!(t + 2 <= n, "need sender plus t+1 witnesses inside n nodes");
        SmallRangeParams {
            n,
            t,
            sender: NodeId(0),
            default_value,
        }
    }

    /// Automaton rounds: sends in rounds 0–1, decision in round 2.
    pub fn rounds(&self) -> u32 {
        3
    }

    /// Is `node` a witness?
    pub fn is_witness(&self, node: NodeId) -> bool {
        let i = node.index();
        i >= 1 && i <= self.t + 1
    }
}

/// Honest participant in the small-range protocol.
pub struct SmallRangeFdNode {
    me: NodeId,
    params: SmallRangeParams,
    scheme: Arc<dyn SignatureScheme>,
    store: KeyStore,
    keyring: Keyring,
    value: Option<Vec<u8>>,
    /// Verified direct value from the sender.
    direct: Option<Vec<u8>>,
    /// The verified sender chain (kept for witness echoing).
    received_chain: Option<ChainMessage>,
    /// Verified witness echo values, indexed by node.
    echoes: Vec<Option<Vec<u8>>>,
    failed: Option<DiscoveryReason>,
    outcome: Outcome,
    done: bool,
}

impl SmallRangeFdNode {
    /// Create the automaton for node `me`; `value` is `Some` exactly on the
    /// sender.
    ///
    /// # Panics
    ///
    /// Panics if value presence contradicts the sender role.
    pub fn new(
        me: NodeId,
        params: SmallRangeParams,
        scheme: Arc<dyn SignatureScheme>,
        store: KeyStore,
        keyring: Keyring,
        value: Option<Vec<u8>>,
    ) -> Self {
        assert_eq!(
            me == params.sender,
            value.is_some(),
            "exactly the sender carries the initial value"
        );
        let n = params.n;
        SmallRangeFdNode {
            me,
            params,
            scheme,
            store,
            keyring,
            value,
            direct: None,
            received_chain: None,
            echoes: vec![None; n],
            failed: None,
            outcome: Outcome::Pending,
            done: false,
        }
    }

    /// The node's outcome.
    pub fn outcome(&self) -> &Outcome {
        &self.outcome
    }

    fn fail(&mut self, reason: DiscoveryReason) {
        if self.failed.is_none() {
            self.failed = Some(reason);
        }
    }

    fn handle_direct(&mut self, env: &Envelope) {
        if env.from != self.params.sender || self.direct.is_some() {
            return self.fail(DiscoveryReason::UnexpectedMessage { round: 1 });
        }
        let msg = match SrMsg::decode_exact(&env.payload) {
            Ok(m) => m,
            Err(_) => return self.fail(DiscoveryReason::Malformed),
        };
        if msg.chain.origin != self.params.sender
            || !msg.chain.layers.is_empty()
            || msg.chain.body == self.params.default_value
        {
            return self.fail(DiscoveryReason::BadStructure);
        }
        match msg
            .chain
            .verify_cached(self.scheme.as_ref(), &self.store, env.from)
        {
            Ok(_) => {
                self.direct = Some(msg.chain.body.clone());
                self.received_chain = Some(msg.chain);
            }
            Err(reason) => self.fail(reason),
        }
    }

    fn handle_echo(&mut self, env: &Envelope) {
        if !self.params.is_witness(env.from) || self.echoes[env.from.index()].is_some() {
            return self.fail(DiscoveryReason::UnexpectedMessage { round: 2 });
        }
        let msg = match SrMsg::decode_exact(&env.payload) {
            Ok(m) => m,
            Err(_) => return self.fail(DiscoveryReason::Malformed),
        };
        if msg.chain.origin != self.params.sender
            || msg.chain.layers.len() != 1
            || msg.chain.body == self.params.default_value
        {
            return self.fail(DiscoveryReason::BadStructure);
        }
        match msg
            .chain
            .verify_cached(self.scheme.as_ref(), &self.store, env.from)
        {
            Ok(_) => self.echoes[env.from.index()] = Some(msg.chain.body),
            Err(reason) => self.fail(reason),
        }
    }

    fn decide(&mut self) {
        if let Some(reason) = self.failed.take() {
            self.outcome = Outcome::Discovered(reason);
            self.done = true;
            return;
        }
        let my_direct = if self.me == self.params.sender {
            self.value
                .clone()
                .filter(|v| *v != self.params.default_value)
        } else {
            self.direct.clone()
        };
        let echo_count = (1..=self.params.t + 1)
            .filter(|&w| self.echoes[w].is_some())
            .count();
        // The sender "echoes to itself" conceptually; witnesses count their
        // own echo.
        let complete_silence = my_direct.is_none() && echo_count == 0;
        let full_pattern = my_direct.is_some()
            && (1..=self.params.t + 1).all(|w| {
                if NodeId(w as u16) == self.me {
                    // A witness trusts its own (verified) direct value.
                    true
                } else {
                    self.echoes[w].as_deref() == my_direct.as_deref()
                }
            });
        self.outcome = if complete_silence {
            Outcome::Decided(self.params.default_value.clone())
        } else if full_pattern {
            Outcome::Decided(my_direct.expect("full pattern has a value"))
        } else {
            Outcome::Discovered(DiscoveryReason::Equivocation)
        };
        self.done = true;
    }
}

impl Node for SmallRangeFdNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn on_round(&mut self, round: u32, inbox: &[Envelope], out: &mut Outbox) {
        if self.done {
            if !inbox.is_empty() && !self.outcome.is_discovered() {
                self.outcome = Outcome::Discovered(DiscoveryReason::UnexpectedMessage { round });
            }
            return;
        }
        match round {
            0 => {
                if self.me == self.params.sender {
                    let v = self.value.clone().expect("sender value");
                    if v != self.params.default_value {
                        let chain = ChainMessage::originate(
                            self.scheme.as_ref(),
                            &self.keyring.sk,
                            self.me,
                            v,
                        )
                        .expect("own keyring is well-formed");
                        out.broadcast(self.params.n, self.me, SrMsg { chain }.encode_to_vec());
                    }
                }
            }
            1 => {
                for env in &inbox.to_vec() {
                    self.handle_direct(env);
                }
                // Witness echo: extend the verified chain and broadcast.
                if self.params.is_witness(self.me) && self.failed.is_none() {
                    if let Some(v) = self.direct.clone() {
                        let received = self
                            .received_chain
                            .clone()
                            .expect("direct implies stored chain");
                        let extended = received
                            .extend(self.scheme.as_ref(), &self.keyring.sk, self.params.sender)
                            .expect("own keyring is well-formed");
                        out.broadcast(
                            self.params.n,
                            self.me,
                            SrMsg { chain: extended }.encode_to_vec(),
                        );
                        self.echoes[self.me.index()] = Some(v);
                    }
                }
            }
            2 => {
                for env in &inbox.to_vec() {
                    self.handle_echo(env);
                }
                self.decide();
            }
            _ => {
                if !inbox.is_empty() {
                    self.outcome =
                        Outcome::Discovered(DiscoveryReason::UnexpectedMessage { round });
                    self.done = true;
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl core::fmt::Debug for SmallRangeFdNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SmallRangeFdNode")
            .field("me", &self.me)
            .field("outcome", &self.outcome)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_crypto::SchnorrScheme;
    use fd_simnet::SyncNetwork;

    fn build(n: usize, t: usize, value: &[u8]) -> Vec<Box<dyn Node>> {
        let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
        let rings: Vec<Keyring> = (0..n)
            .map(|i| Keyring::generate(scheme.as_ref(), NodeId(i as u16), 3))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(SmallRangeFdNode::new(
                    me,
                    SmallRangeParams::new(n, t, vec![0]),
                    Arc::clone(&scheme),
                    KeyStore::global(me, &pks),
                    rings[i].clone(),
                    (i == 0).then(|| value.to_vec()),
                )) as Box<dyn Node>
            })
            .collect()
    }

    fn outcomes(net: SyncNetwork) -> Vec<Outcome> {
        net.into_nodes()
            .into_iter()
            .map(|b| {
                b.into_any()
                    .downcast::<SmallRangeFdNode>()
                    .expect("SmallRangeFdNode")
                    .outcome
            })
            .collect()
    }

    #[test]
    fn default_value_costs_zero_messages() {
        let (n, t) = (6usize, 2usize);
        let mut net = SyncNetwork::new(build(n, t, &[0]));
        net.run_until_done(3);
        assert_eq!(net.stats().messages_total, 0);
        for o in outcomes(net) {
            assert_eq!(o, Outcome::Decided(vec![0]));
        }
    }

    #[test]
    fn non_default_value_full_pattern() {
        let (n, t) = (6usize, 2usize);
        let mut net = SyncNetwork::new(build(n, t, &[1]));
        net.run_until_done(3);
        assert_eq!(net.stats().messages_total, (t + 2) * (n - 1));
        for (i, o) in outcomes(net).into_iter().enumerate() {
            assert_eq!(o, Outcome::Decided(vec![1]), "node {i}");
        }
    }

    #[test]
    fn partial_dissemination_never_splits_silently() {
        // Sender's broadcast to P4 and P5 dropped: witnesses still echo,
        // so P4/P5 must NOT decide the default silently.
        let (n, t) = (6usize, 1usize);
        let mut net = SyncNetwork::new(build(n, t, &[1]));
        let plan = fd_simnet::fault::FaultPlan::new()
            .with(0, NodeId(0), NodeId(4), fd_simnet::fault::LinkFault::Drop)
            .with(0, NodeId(0), NodeId(5), fd_simnet::fault::LinkFault::Drop);
        net.set_fault_plan(plan);
        net.run_until_done(3);
        let outs = outcomes(net);
        for i in [4usize, 5] {
            assert!(
                outs[i].is_discovered(),
                "node {i} must discover, not decide default: {:?}",
                outs[i]
            );
        }
    }

    #[test]
    fn suppressed_echo_discovered() {
        let (n, t) = (5usize, 1usize);
        let mut net = SyncNetwork::new(build(n, t, &[1]));
        // Witness P2's echo to P4 dropped.
        net.set_fault_plan(fd_simnet::fault::FaultPlan::new().with(
            1,
            NodeId(2),
            NodeId(4),
            fd_simnet::fault::LinkFault::Drop,
        ));
        net.run_until_done(3);
        let outs = outcomes(net);
        assert!(outs[4].is_discovered());
        assert_eq!(outs[3], Outcome::Decided(vec![1]));
    }

    #[test]
    fn sender_sending_default_explicitly_is_bad_structure() {
        // A (faulty) sender that explicitly transmits the default value
        // deviates from the silence rule; receivers discover.
        let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
        let rings: Vec<Keyring> = (0..4)
            .map(|i| Keyring::generate(scheme.as_ref(), NodeId(i as u16), 3))
            .collect();
        let pks: Vec<_> = rings.iter().map(|r| r.pk.clone()).collect();
        let mut node = SmallRangeFdNode::new(
            NodeId(1),
            SmallRangeParams::new(4, 1, vec![0]),
            Arc::clone(&scheme),
            KeyStore::global(NodeId(1), &pks),
            rings[1].clone(),
            None,
        );
        let chain =
            ChainMessage::originate(scheme.as_ref(), &rings[0].sk, NodeId(0), vec![0]).unwrap();
        let env = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            round: 0,
            payload: SrMsg { chain }.encode_to_vec().into(),
        };
        let mut out = Outbox::new();
        node.on_round(1, &[env], &mut out);
        node.on_round(2, &[], &mut out);
        assert!(node.outcome().is_discovered());
    }

    #[test]
    fn codec_round_trip() {
        let scheme = SchnorrScheme::test_tiny();
        let ring = Keyring::generate(&scheme, NodeId(0), 1);
        let chain = ChainMessage::originate(&scheme, &ring.sk, NodeId(0), vec![1]).unwrap();
        let msg = SrMsg { chain };
        assert_eq!(SrMsg::decode_exact(&msg.encode_to_vec()).unwrap(), msg);
    }
}
