//! Closed-form message-complexity expressions from the paper.
//!
//! Every experiment table checks measured counts against these formulas —
//! the reproduction's equivalent of the paper's analytical claims (§3.1,
//! §5, §6).

/// Key distribution cost (paper §3.1/§6): `3·n·(n−1)` messages.
pub fn keydist_messages(n: usize) -> usize {
    3 * n * n.saturating_sub(1)
}

/// Key distribution communication rounds: 3.
pub const KEYDIST_COMM_ROUNDS: u32 = 3;

/// Authenticated chain FD cost per run (paper Fig. 2 / §5): `n − 1`.
pub fn chain_fd_messages(n: usize) -> usize {
    n.saturating_sub(1)
}

/// Chain FD communication rounds: `t + 1`.
pub fn chain_fd_comm_rounds(t: usize) -> u32 {
    t as u32 + 1
}

/// Non-authenticated witness-relay FD cost per run: `(t + 2)(n − 1)`,
/// the `O(n·t)` of the paper's §5.
pub fn non_auth_messages(n: usize, t: usize) -> usize {
    (t + 2) * n.saturating_sub(1)
}

/// Small-range FD cost per run given whether the value is the default.
pub fn small_range_messages(n: usize, t: usize, is_default: bool) -> usize {
    if is_default {
        0
    } else {
        (t + 2) * n.saturating_sub(1)
    }
}

/// Phase-King failure-free cost: `(n−1) + (t+1)·(n+1)·(n−1)` — the initial
/// broadcast plus, per phase, a universal exchange (`n·(n−1)`) and the king
/// broadcast (`n−1`). The `O(t·n²)` non-authenticated full-agreement
/// baseline of experiment T7.
pub fn phase_king_messages(n: usize, t: usize) -> usize {
    let nm1 = n.saturating_sub(1);
    nm1 + (t + 1) * (n * nm1 + nm1)
}

/// Phase-King communication rounds: `1 + 2·(t+1)`.
pub fn phase_king_comm_rounds(t: usize) -> u32 {
    1 + 2 * (t as u32 + 1)
}

/// Degradable (crusader/graded) agreement failure-free cost:
/// `(n−1) + (n−1)²  =  n·(n−1)` — direct broadcast plus everyone's echo.
pub fn degradable_messages(n: usize) -> usize {
    n * n.saturating_sub(1)
}

/// Degradable agreement communication rounds: 2, independent of `t`.
pub const DEGRADABLE_COMM_ROUNDS: u32 = 2;

/// Dolev–Strong failure-free cost under a correct sender: `n·(n−1)` (the
/// initial broadcast plus one relay per node).
pub fn dolev_strong_messages(n: usize) -> usize {
    n * n.saturating_sub(1)
}

/// Cumulative messages after establishing local authentication once and
/// running `k` authenticated FD runs (experiment F1, "authenticated" series).
pub fn cumulative_authenticated(n: usize, k: usize) -> usize {
    keydist_messages(n) + k * chain_fd_messages(n)
}

/// Cumulative messages for `k` non-authenticated FD runs (experiment F1,
/// baseline series).
pub fn cumulative_non_auth(n: usize, t: usize, k: usize) -> usize {
    k * non_auth_messages(n, t)
}

/// Cumulative messages over `epochs` key-rotation epochs of `runs_per_epoch`
/// chain-FD runs each: every epoch pays the key distribution again (see
/// [`crate::epoch`]).
pub fn cumulative_with_rotations(n: usize, epochs: usize, runs_per_epoch: usize) -> usize {
    epochs * (keydist_messages(n) + runs_per_epoch * chain_fd_messages(n))
}

/// The smallest number of runs `k*` after which the authenticated approach
/// has sent fewer total messages, or `None` if it never catches up
/// (requires `t >= 1`; with `t = 0` both cost about the same per run and
/// the key distribution never amortizes).
pub fn amortization_crossover(n: usize, t: usize) -> Option<usize> {
    let setup = keydist_messages(n);
    let per_run_saving = non_auth_messages(n, t).saturating_sub(chain_fd_messages(n));
    if per_run_saving == 0 {
        return None;
    }
    // smallest k with k * saving > setup
    Some(setup / per_run_saving + 1)
}

/// Expected messages per small-range run when the value equals the default
/// with probability `p_default` (experiment T5), in units of 1e-3 messages
/// to stay in integer arithmetic.
pub fn small_range_expected_millimessages(n: usize, t: usize, p_default_permille: u32) -> u64 {
    let non_default = small_range_messages(n, t, false) as u64;
    (1000 - p_default_permille as u64) * non_default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formulas() {
        assert_eq!(keydist_messages(4), 36);
        assert_eq!(keydist_messages(1), 0);
        assert_eq!(chain_fd_messages(8), 7);
        assert_eq!(non_auth_messages(8, 2), 28);
        assert_eq!(chain_fd_comm_rounds(3), 4);
    }

    #[test]
    fn baseline_formulas() {
        // n = 5, t = 1: 4 + 2·(25 + 5 − 5 − 1)·… spelled out: 4 + 2·(5·4 + 4)
        assert_eq!(phase_king_messages(5, 1), 4 + 2 * (20 + 4));
        assert_eq!(phase_king_comm_rounds(1), 5);
        assert_eq!(degradable_messages(5), 20);
        assert_eq!(dolev_strong_messages(5), 20);
        assert_eq!(DEGRADABLE_COMM_ROUNDS, 2);
    }

    #[test]
    fn small_range_default_is_free() {
        assert_eq!(small_range_messages(10, 3, true), 0);
        assert_eq!(small_range_messages(10, 3, false), 45);
    }

    #[test]
    fn rotation_accounting() {
        assert_eq!(
            cumulative_with_rotations(6, 3, 4),
            3 * (keydist_messages(6) + 4 * chain_fd_messages(6))
        );
        assert_eq!(cumulative_with_rotations(6, 0, 10), 0);
    }

    #[test]
    fn crossover_matches_inequality() {
        for (n, t) in [(4usize, 1usize), (8, 2), (16, 5), (32, 10)] {
            let k = amortization_crossover(n, t).unwrap();
            assert!(
                cumulative_authenticated(n, k) < cumulative_non_auth(n, t, k),
                "n={n} t={t} k={k}"
            );
            if k > 1 {
                assert!(
                    cumulative_authenticated(n, k - 1) >= cumulative_non_auth(n, t, k - 1),
                    "n={n} t={t} k-1={}",
                    k - 1
                );
            }
        }
    }

    #[test]
    fn crossover_none_when_no_saving() {
        // t = 0: non-auth costs 2(n-1), chain costs n-1: saving exists.
        assert!(amortization_crossover(5, 0).is_some());
        // Degenerate n = 1: both zero.
        assert_eq!(amortization_crossover(1, 0), None);
    }

    #[test]
    fn crossover_is_about_3n_over_t_plus_1() {
        // Analytically k* = ceil(3n(n-1) / ((t+1)(n-1))) = ceil(3n/(t+1)).
        for (n, t) in [(8usize, 1usize), (16, 3), (32, 7)] {
            let k = amortization_crossover(n, t).unwrap();
            let analytic = 3 * n / (t + 1) + 1;
            assert!(
                k.abs_diff(analytic) <= 1,
                "n={n} t={t}: k={k} analytic≈{analytic}"
            );
        }
    }

    #[test]
    fn expected_millimessages_monotone_in_default_probability() {
        let lo = small_range_expected_millimessages(8, 2, 900);
        let hi = small_range_expected_millimessages(8, 2, 100);
        assert!(lo < hi);
    }
}
