//! The unified execution API: one typed [`RunSpec`] per protocol run,
//! executed via [`Cluster::run`], with [`Session`] making the paper's
//! keydist amortization a first-class object.
//!
//! Borcherding's central claim is economic: *one* `3n(n−1)`-message key
//! distribution amortizes across arbitrarily many `n−1`-message
//! failure-discovery runs (§6). The API mirrors that shape directly:
//!
//! * a [`RunSpec`] is a plain value describing **what** to run — protocol,
//!   sender input, default value, a declarative
//!   [`AdversarySpec`], and an optional
//!   per-message delivery schedule;
//! * a [`Cluster`] (from [`crate::runner`]) describes **where** — `(n, t,
//!   scheme, seed)` plus engine, latency, link overrides, and faults;
//! * [`Cluster::run`] executes a spec end to end (running the setup-phase
//!   key distribution itself when the protocol needs keys), and
//! * a [`Session`] owns a cluster, lazily runs the key distribution
//!   **once**, and executes many specs against the cached stores — the
//!   amortization pattern, directly benchmarkable via
//!   [`Session::messages_spent`].
//!
//! Every layer above the core — the sweep matrix, the scheduler search,
//! the fd-bench experiments, the `lafd` CLI, and the examples — executes
//! protocols through this entry point. The old per-protocol
//! `Cluster::run_*` methods survive only as deprecated shims in
//! `fd_core::compat`, behind the off-by-default `compat` cargo feature.
//!
//! ```
//! use fd_core::spec::{Protocol, RunSpec, Session};
//! use fd_core::runner::Cluster;
//! use std::sync::Arc;
//!
//! let cluster = Cluster::new(7, 2, Arc::new(fd_crypto::SchnorrScheme::test_tiny()), 42);
//! let mut session = Session::new(cluster);
//!
//! // Many runs, one key distribution (paper §6 amortization).
//! for k in 0..5u8 {
//!     let run = session.run(&RunSpec::new(Protocol::ChainFd, vec![k]));
//!     assert!(run.all_decided(&[k]));
//!     assert_eq!(run.stats.messages_total, 6); // n − 1
//! }
//! assert_eq!(session.keydist_runs(), 1);
//! assert_eq!(session.messages_spent(), 3 * 7 * 6 + 5 * 6);
//! ```

use crate::adversary::AdversarySpec;
use crate::ba::{
    DegradableNode, DegradableParams, DolevStrongNode, DolevStrongParams, FdToBaNode, FdToBaParams,
    PhaseKingNode, PhaseKingParams,
};
use crate::fd::{
    ChainFdNode, ChainFdParams, NonAuthFdNode, NonAuthParams, SmallRangeFdNode, SmallRangeParams,
};
use crate::metrics;
use crate::outcome::Outcome;
use crate::runner::{Cluster, FdRunReport, KeyDistReport, Schedule, Substitution};
use fd_crypto::{DsaScheme, RsaScheme, SchnorrScheme, SignatureScheme};
use fd_simnet::fault::FaultPlan;
use fd_simnet::{Engine, LatencySpec, LinkLatencySpec, Node, NodeId};
use std::fmt;
use std::sync::Arc;

/// Look up a signature scheme by its stable CLI/wire name.
///
/// This is the single scheme table shared by the `lafd` CLI, the wire
/// format, and the service shards (shard keys compare these names, so one
/// table keeps "same scheme" meaning the same thing everywhere).
pub fn scheme_by_name(name: &str) -> Result<Arc<dyn SignatureScheme>, String> {
    Ok(match name {
        "tiny" => Arc::new(SchnorrScheme::test_tiny()),
        "dsa-tiny" | "dsa" => Arc::new(DsaScheme::test_tiny()),
        "s512" => Arc::new(SchnorrScheme::s512()),
        "s1024" => Arc::new(SchnorrScheme::s1024()),
        "s2048" => Arc::new(SchnorrScheme::s2048()),
        "dsa512" => Arc::new(DsaScheme::s512()),
        "dsa1024" => Arc::new(DsaScheme::s1024()),
        "rsa512" => Arc::new(RsaScheme::new(512)),
        "rsa1024" => Arc::new(RsaScheme::new(1024)),
        other => {
            return Err(format!(
                "unknown scheme {other} \
                 (tiny|dsa-tiny|s512|s1024|s2048|dsa512|dsa1024|rsa512|rsa1024)"
            ))
        }
    })
}

/// The protocols a [`RunSpec`] can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Protocol {
    /// Authenticated chain FD (paper Fig. 2): `n − 1` messages.
    ChainFd,
    /// Non-authenticated witness relay: `(t + 2)(n − 1)` messages.
    NonAuthFd,
    /// Small-value-range FD, run with a non-default value.
    SmallRange,
    /// The FD→BA extension (failure-free runs at FD cost).
    FdToBa,
    /// Degradable (crusader/graded) agreement.
    Degradable,
    /// Dolev–Strong authenticated BA baseline.
    DolevStrong,
    /// Phase-King non-authenticated BA baseline (`n > 4t`).
    PhaseKing,
}

impl Protocol {
    /// Every protocol, in canonical order.
    pub const ALL: [Protocol; 7] = [
        Protocol::ChainFd,
        Protocol::NonAuthFd,
        Protocol::SmallRange,
        Protocol::FdToBa,
        Protocol::Degradable,
        Protocol::DolevStrong,
        Protocol::PhaseKing,
    ];

    /// Stable machine-readable name (used in reports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::ChainFd => "chain_fd",
            Protocol::NonAuthFd => "non_auth_fd",
            Protocol::SmallRange => "small_range",
            Protocol::FdToBa => "fd_to_ba",
            Protocol::Degradable => "degradable",
            Protocol::DolevStrong => "dolev_strong",
            Protocol::PhaseKing => "phase_king",
        }
    }

    /// Parse a CLI name (several aliases accepted).
    pub fn parse(name: &str) -> Result<Protocol, String> {
        Ok(match name {
            "chain" | "chainfd" | "chain_fd" | "fd" => Protocol::ChainFd,
            "nonauth" | "non_auth" | "non_auth_fd" => Protocol::NonAuthFd,
            "small" | "small_range" => Protocol::SmallRange,
            "ba" | "fd_to_ba" => Protocol::FdToBa,
            "degrade" | "degradable" => Protocol::Degradable,
            "ds" | "dolev_strong" => Protocol::DolevStrong,
            "king" | "phase_king" => Protocol::PhaseKing,
            other => {
                return Err(format!(
                    "unknown protocol {other} \
                     (chain|nonauth|small|ba|degrade|ds|king)"
                ))
            }
        })
    }

    /// Whether the protocol runs on locally distributed keys.
    pub fn needs_keys(self) -> bool {
        !matches!(self, Protocol::NonAuthFd | Protocol::PhaseKing)
    }

    /// Whether the `(n, t)` shape satisfies the protocol's resilience
    /// requirement.
    pub fn admissible(self, n: usize, t: usize) -> bool {
        if t + 2 > n {
            return false;
        }
        match self {
            Protocol::ChainFd | Protocol::NonAuthFd | Protocol::SmallRange => true,
            Protocol::FdToBa | Protocol::Degradable => n > 3 * t,
            Protocol::DolevStrong => true,
            Protocol::PhaseKing => n > 4 * t,
        }
    }

    /// The paper's closed-form failure-free message count.
    pub fn expected_messages(self, n: usize, t: usize) -> usize {
        match self {
            Protocol::ChainFd | Protocol::FdToBa => metrics::chain_fd_messages(n),
            Protocol::NonAuthFd => metrics::non_auth_messages(n, t),
            Protocol::SmallRange => metrics::small_range_messages(n, t, false),
            Protocol::Degradable => metrics::degradable_messages(n),
            Protocol::DolevStrong => metrics::dolev_strong_messages(n),
            Protocol::PhaseKing => metrics::phase_king_messages(n, t),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything one protocol run needs, as a plain value.
///
/// Construct with [`RunSpec::new`] and refine with the `with_*` builders;
/// execute with [`Cluster::run`] or [`Session::run`]. A spec is `Clone`
/// and `Send`, so fan-out layers (the sweep's thread pool, the scheduler
/// search's parallel restarts) pass specs around instead of closures.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The protocol to execute.
    pub protocol: Protocol,
    /// The sender's input value.
    pub input: Vec<u8>,
    /// The default value of protocols that have one (small-range FD and
    /// the BA family); ignored by the others.
    pub default_value: Vec<u8>,
    /// Which nodes are corrupt and how ([`AdversarySpec::Honest`] by
    /// default).
    pub adversary: AdversarySpec,
    /// Per-message delivery schedule for event-engine runs. When set, it
    /// *replaces* any schedule configured on the cluster
    /// ([`Cluster::with_schedule`]) for this run; `None` leaves the
    /// cluster's configuration untouched. This is the scheduler search's
    /// per-episode hook.
    pub schedule: Option<Schedule>,
}

impl RunSpec {
    /// A failure-free spec with default value `b"default"`.
    pub fn new(protocol: Protocol, input: impl Into<Vec<u8>>) -> Self {
        RunSpec {
            protocol,
            input: input.into(),
            default_value: b"default".to_vec(),
            adversary: AdversarySpec::Honest,
            schedule: None,
        }
    }

    /// Set the default value.
    #[must_use]
    pub fn with_default_value(mut self, default_value: impl Into<Vec<u8>>) -> Self {
        self.default_value = default_value.into();
        self
    }

    /// Set the adversary.
    #[must_use]
    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// Install a per-message delivery schedule for this run.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }
}

/// The single request-construction path shared by the `lafd` CLI
/// subcommands, the wire format, and the service: every flag set, JSON
/// request, and remote scenario builds a `(Cluster, RunSpec)` pair through
/// this builder, so validation rules live in exactly one place.
///
/// Unlike [`Cluster::new`] (which panics on a bad shape), [`build`]
/// returns `Err` with a CLI-quality message — the service turns these
/// into error responses instead of dying.
///
/// ```
/// use fd_core::spec::{Protocol, SpecBuilder};
///
/// let (cluster, spec) = SpecBuilder::new(Protocol::ChainFd, 7)
///     .with_input(b"v".to_vec())
///     .build()
///     .unwrap();
/// assert_eq!(cluster.t, 2); // ⌊(n−1)/3⌋ default
/// assert!(cluster.run(&spec).all_decided(b"v"));
/// ```
///
/// [`build`]: SpecBuilder::build
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    /// The protocol to execute.
    pub protocol: Protocol,
    /// System size.
    pub n: usize,
    /// Tolerated faults; `None` derives the classic `⌊(n−1)/3⌋` clamped
    /// to `n − 2` (see [`SpecBuilder::resolved_t`]).
    pub t: Option<usize>,
    /// Determinism seed (key material, nonces, jitter).
    pub seed: u64,
    /// Signature-scheme name, resolved via [`scheme_by_name`].
    pub scheme: String,
    /// Execution engine.
    pub engine: Engine,
    /// Latency model (event engine only).
    pub latency: LatencySpec,
    /// Per-link latency overrides (event engine only).
    pub link_latency: Vec<LinkLatencySpec>,
    /// Link faults installed on the cluster (CLI only — no wire form).
    pub faults: FaultPlan,
    /// The sender's input value.
    pub input: Vec<u8>,
    /// Default value for the protocols that have one.
    pub default_value: Vec<u8>,
    /// Which nodes are corrupt and how.
    pub adversary: AdversarySpec,
    /// Per-message delivery schedule (event engine only).
    pub schedule: Option<Schedule>,
}

impl SpecBuilder {
    /// A failure-free synchronous request with the conventional defaults:
    /// seed 1, the tiny test scheme, derived `t`, input `b"value"`,
    /// default value `b"default"`.
    pub fn new(protocol: Protocol, n: usize) -> Self {
        SpecBuilder {
            protocol,
            n,
            t: None,
            seed: 1,
            scheme: "tiny".to_string(),
            engine: Engine::Sync,
            latency: LatencySpec::Synchronous,
            link_latency: Vec::new(),
            faults: FaultPlan::new(),
            input: b"value".to_vec(),
            default_value: b"default".to_vec(),
            adversary: AdversarySpec::Honest,
            schedule: None,
        }
    }

    /// Set the fault budget explicitly.
    #[must_use]
    pub fn with_t(mut self, t: usize) -> Self {
        self.t = Some(t);
        self
    }

    /// Set the determinism seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the signature scheme by name (validated in [`build`]).
    ///
    /// [`build`]: SpecBuilder::build
    #[must_use]
    pub fn with_scheme(mut self, scheme: impl Into<String>) -> Self {
        self.scheme = scheme.into();
        self
    }

    /// Select the execution engine.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Set the latency model (normalized like [`Cluster::with_latency`]).
    #[must_use]
    pub fn with_latency(mut self, latency: LatencySpec) -> Self {
        self.latency = latency.normalize();
        self
    }

    /// Install per-link latency overrides.
    #[must_use]
    pub fn with_link_latency(mut self, link_latency: Vec<LinkLatencySpec>) -> Self {
        self.link_latency = link_latency;
        self
    }

    /// Install a link-fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Set the sender's input value.
    #[must_use]
    pub fn with_input(mut self, input: impl Into<Vec<u8>>) -> Self {
        self.input = input.into();
        self
    }

    /// Set the default value.
    #[must_use]
    pub fn with_default_value(mut self, default_value: impl Into<Vec<u8>>) -> Self {
        self.default_value = default_value.into();
        self
    }

    /// Set the adversary.
    #[must_use]
    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// Install (or clear) a per-message delivery schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Option<Schedule>) -> Self {
        self.schedule = schedule;
        self
    }

    /// The effective fault budget: explicit `t`, or the classic
    /// `⌊(n−1)/3⌋` clamped to `n − 2`.
    pub fn resolved_t(&self) -> usize {
        self.t
            .unwrap_or_else(|| ((self.n.saturating_sub(1)) / 3).min(self.n.saturating_sub(2)))
    }

    /// Check every constraint [`build`] enforces without constructing
    /// anything — the service validates requests up front so execution
    /// can never hit a `Cluster` panic.
    ///
    /// [`build`]: SpecBuilder::build
    pub fn validate(&self) -> Result<(), String> {
        let t = self.resolved_t();
        if self.n > usize::from(u16::MAX) {
            return Err(format!("n {} exceeds the node-id space", self.n));
        }
        if t + 2 > self.n {
            return Err(format!("require t + 2 <= n (t {t}, n {})", self.n));
        }
        if !self.protocol.admissible(self.n, t) {
            return Err(format!(
                "protocol {} is inadmissible at n {}, t {t}",
                self.protocol, self.n
            ));
        }
        scheme_by_name(&self.scheme)?;
        if self.engine == Engine::Sync {
            if self.latency != LatencySpec::Synchronous {
                return Err(format!(
                    "latency {} needs the event engine",
                    self.latency.name()
                ));
            }
            if !self.link_latency.is_empty() {
                return Err("link latency overrides need the event engine".to_string());
            }
            if self.schedule.is_some() {
                return Err("delivery schedules need the event engine".to_string());
            }
        }
        for link in &self.link_latency {
            for end in [link.from, link.to] {
                if end.index() >= self.n {
                    return Err(format!(
                        "link latency {} names node {} outside 0..{}",
                        link.name(),
                        end.index(),
                        self.n
                    ));
                }
            }
        }
        for node in self.adversary.corrupt_set() {
            if node.index() >= self.n {
                return Err(format!(
                    "adversary corrupts node {} outside 0..{}",
                    node.index(),
                    self.n
                ));
            }
        }
        if !self.adversary.applies_to(self.protocol) {
            return Err(format!(
                "adversary {} cannot speak protocol {}",
                self.adversary.name(),
                self.protocol
            ));
        }
        Ok(())
    }

    /// Build the cluster half of the request (validated).
    pub fn build_cluster(&self) -> Result<Cluster, String> {
        self.validate()?;
        Ok(Cluster::new(
            self.n,
            self.resolved_t(),
            scheme_by_name(&self.scheme)?,
            self.seed,
        )
        .with_engine(self.engine)
        .with_latency(self.latency)
        .with_link_latency(self.link_latency.clone())
        .with_faults(self.faults.clone()))
    }

    /// Build the validated `(Cluster, RunSpec)` pair this request
    /// describes.
    pub fn build(&self) -> Result<(Cluster, RunSpec), String> {
        let cluster = self.build_cluster()?;
        let mut spec = RunSpec::new(self.protocol, self.input.clone())
            .with_default_value(self.default_value.clone())
            .with_adversary(self.adversary.clone());
        if let Some(schedule) = &self.schedule {
            spec = spec.with_schedule(Arc::clone(schedule));
        }
        Ok((cluster, spec))
    }
}

impl Cluster {
    /// Execute one spec end to end: when the protocol needs keys, run the
    /// setup-phase key distribution first ([`Cluster::setup_keydist`]),
    /// then the protocol run. For many runs against one key distribution,
    /// use a [`Session`] — that is the paper's amortization pattern.
    ///
    /// # Panics
    ///
    /// Panics if the spec's adversary cannot speak the protocol (see
    /// [`AdversarySpec::applies_to`]).
    pub fn run(&self, spec: &RunSpec) -> FdRunReport {
        let keydist = self.keydist_for(spec.protocol);
        self.run_with_keys(spec, keydist.as_ref())
    }

    /// The setup-phase key distribution a protocol needs on this cluster:
    /// `Some` exactly when [`Protocol::needs_keys`] (see
    /// [`Cluster::setup_keydist`] for the timing discipline).
    pub fn keydist_for(&self, protocol: Protocol) -> Option<KeyDistReport> {
        protocol.needs_keys().then(|| self.setup_keydist())
    }

    /// Run the key distribution in the quiet setup phase: always under
    /// synchronous latency and without link faults, per-link overrides, or
    /// schedule overrides — keys are established before the network's
    /// timing or fault behaviour matters (paper §3: the protocol itself is
    /// proved in the synchronous model).
    pub fn setup_keydist(&self) -> KeyDistReport {
        self.clone()
            .with_latency(LatencySpec::Synchronous)
            .with_link_latency(Vec::new())
            .with_faults(fd_simnet::fault::FaultPlan::new())
            .with_schedule(None)
            .run_key_distribution()
    }

    /// Execute one spec against an already established key distribution
    /// (or `None` for the key-free protocols). This is the amortizing
    /// entry point [`Session`] builds on.
    ///
    /// # Panics
    ///
    /// Panics if the protocol needs keys and `keydist` is `None`, or if
    /// the spec's adversary cannot speak the protocol.
    pub fn run_with_keys(&self, spec: &RunSpec, keydist: Option<&KeyDistReport>) -> FdRunReport {
        assert!(
            spec.adversary.applies_to(spec.protocol),
            "adversary {} cannot speak protocol {}",
            spec.adversary.name(),
            spec.protocol
        );
        // A per-run schedule overlays the cluster's configuration without
        // mutating it (the cluster may be shared across a session).
        let scheduled;
        let cluster: &Cluster = match &spec.schedule {
            Some(schedule) => {
                scheduled = self.clone().with_schedule(Some(Arc::clone(schedule)));
                &scheduled
            }
            None => self,
        };
        let mut substitute = spec.adversary.substitution(cluster, keydist);
        cluster.dispatch(
            spec.protocol,
            keydist,
            spec.input.clone(),
            spec.default_value.clone(),
            &mut *substitute,
        )
    }

    /// The single per-protocol dispatch point: build the node set, drive
    /// it on the configured engine, extract outcomes (plus the FD→BA
    /// fallback flags and degradable grades where they exist).
    pub(crate) fn dispatch(
        &self,
        protocol: Protocol,
        keydist: Option<&KeyDistReport>,
        value: Vec<u8>,
        default_value: Vec<u8>,
        substitute: Substitution<'_>,
    ) -> FdRunReport {
        let keys = || keydist.expect("protocol needs a key distribution");
        // One shared verification cache per run: every node's store routes
        // signature and chain checks through it, so identical chains
        // received by many nodes are verified once (see
        // [`crate::keys::VerifyCache`] for why sharing across stores is
        // sound even under G3 disagreement). A cluster-installed cache
        // ([`Cluster::with_verify_cache`]) extends the sharing across
        // runs — the service-shard reuse path.
        let cache = self.verify_cache.clone().unwrap_or_default();
        // Observability arms the wall-clock accumulator on the run's cache
        // handle and snapshots the counters so a shared (service) cache
        // yields per-run deltas. Neither changes results or report bytes.
        let cache = if self.obs { cache.with_timing() } else { cache };
        let obs_base = self.obs.then(|| (cache.hits(), cache.misses()));
        let mut report = match protocol {
            Protocol::ChainFd => {
                let params = ChainFdParams::new(self.n, self.t);
                let rounds = params.rounds();
                let keys = keys();
                self.finish_fd::<ChainFdNode>(
                    self.assemble(substitute, |me| {
                        Box::new(ChainFdNode::new(
                            me,
                            params.clone(),
                            Arc::clone(&self.scheme),
                            keys.store(me).clone().with_cache(cache.clone()),
                            self.keyring(me),
                            (me == params.sender).then(|| value.clone()),
                        ))
                    }),
                    rounds,
                    |n| n.outcome().clone(),
                )
            }
            Protocol::NonAuthFd => {
                let params = NonAuthParams::new(self.n, self.t);
                let rounds = params.rounds();
                self.finish_fd::<NonAuthFdNode>(
                    self.assemble(substitute, |me| {
                        Box::new(NonAuthFdNode::new(
                            me,
                            params.clone(),
                            (me == params.sender).then(|| value.clone()),
                        ))
                    }),
                    rounds,
                    |n| n.outcome().clone(),
                )
            }
            Protocol::SmallRange => {
                let params = SmallRangeParams::new(self.n, self.t, default_value);
                let rounds = params.rounds();
                let keys = keys();
                self.finish_fd::<SmallRangeFdNode>(
                    self.assemble(substitute, |me| {
                        Box::new(SmallRangeFdNode::new(
                            me,
                            params.clone(),
                            Arc::clone(&self.scheme),
                            keys.store(me).clone().with_cache(cache.clone()),
                            self.keyring(me),
                            (me == params.sender).then(|| value.clone()),
                        ))
                    }),
                    rounds,
                    |n| n.outcome().clone(),
                )
            }
            Protocol::DolevStrong => {
                let params = DolevStrongParams::new(self.n, self.t, default_value);
                let rounds = params.rounds();
                let keys = keys();
                self.finish_fd::<DolevStrongNode>(
                    self.assemble(substitute, |me| {
                        Box::new(DolevStrongNode::new(
                            me,
                            params.clone(),
                            Arc::clone(&self.scheme),
                            keys.store(me).clone().with_cache(cache.clone()),
                            self.keyring(me),
                            (me == params.sender).then(|| value.clone()),
                        ))
                    }),
                    rounds,
                    |n| n.outcome().clone(),
                )
            }
            Protocol::PhaseKing => {
                let params = PhaseKingParams::new(self.n, self.t, default_value);
                let rounds = params.rounds();
                self.finish_fd::<PhaseKingNode>(
                    self.assemble(substitute, |me| {
                        Box::new(PhaseKingNode::new(
                            me,
                            params.clone(),
                            (me == params.sender).then(|| value.clone()),
                        ))
                    }),
                    rounds,
                    |n| n.outcome().clone(),
                )
            }
            Protocol::Degradable => {
                let params = DegradableParams::new(self.n, self.t, default_value);
                let rounds = params.rounds();
                let keys = keys();
                let nodes = self.assemble(substitute, |me| {
                    Box::new(DegradableNode::new(
                        me,
                        params.clone(),
                        Arc::clone(&self.scheme),
                        keys.store(me).clone().with_cache(cache.clone()),
                        self.keyring(me),
                        (me == params.sender).then(|| value.clone()),
                    ))
                });
                let report = self.drive(nodes, rounds);
                let phases = crate::obs::PhaseBreakdown::from_drive(
                    self.engine,
                    report.round_marks,
                    report.max_queue_depth,
                    report.sched,
                );
                let stats = report.stats;
                let delay_log = report.delay_log;
                let mut outcomes = Vec::with_capacity(self.n);
                let mut grades = Vec::with_capacity(self.n);
                for boxed in report.nodes {
                    match boxed.into_any().downcast::<DegradableNode>() {
                        Ok(node) => {
                            outcomes.push(Some(node.outcome().clone()));
                            grades.push(node.grade());
                        }
                        Err(_) => {
                            outcomes.push(None);
                            grades.push(None);
                        }
                    }
                }
                FdRunReport {
                    outcomes,
                    stats,
                    used_fallback: Vec::new(),
                    grades,
                    delay_log,
                    phases,
                }
            }
            Protocol::FdToBa => {
                let params = FdToBaParams::new(self.n, self.t, default_value);
                let rounds = params.rounds();
                let keys = keys();
                let nodes = self.assemble(substitute, |me| {
                    Box::new(FdToBaNode::new(
                        me,
                        params.clone(),
                        Arc::clone(&self.scheme),
                        keys.store(me).clone().with_cache(cache.clone()),
                        self.keyring(me),
                        (me == params.sender).then(|| value.clone()),
                    ))
                });
                let report = self.drive(nodes, rounds);
                let phases = crate::obs::PhaseBreakdown::from_drive(
                    self.engine,
                    report.round_marks,
                    report.max_queue_depth,
                    report.sched,
                );
                let stats = report.stats;
                let delay_log = report.delay_log;
                let mut outcomes = Vec::with_capacity(self.n);
                let mut used_fallback = Vec::with_capacity(self.n);
                for boxed in report.nodes {
                    match boxed.into_any().downcast::<FdToBaNode>() {
                        Ok(node) => {
                            outcomes.push(Some(node.outcome().clone()));
                            used_fallback.push(node.used_fallback());
                        }
                        Err(_) => {
                            outcomes.push(None);
                            used_fallback.push(false);
                        }
                    }
                }
                FdRunReport {
                    outcomes,
                    stats,
                    used_fallback,
                    grades: Vec::new(),
                    delay_log,
                    phases,
                }
            }
        };
        if let Some((hits0, misses0)) = obs_base {
            if let Some(phases) = report.phases.as_mut() {
                phases.cache_hits = (cache.hits().saturating_sub(hits0)) as u64;
                phases.cache_misses = (cache.misses().saturating_sub(misses0)) as u64;
                phases.verify_us = cache.verify_wall_us().unwrap_or(0);
                if let Some(table) = keydist.and_then(|kd| kd.predicates.as_ref()) {
                    phases.interned = table.interned_count() as u64;
                    phases.fresh = table.fresh_count() as u64;
                }
            }
        }
        report
    }

    /// Build the node set for one run: each slot gets the adversary's
    /// substitute or the honest automaton from `honest`.
    fn assemble(
        &self,
        substitute: Substitution<'_>,
        mut honest: impl FnMut(NodeId) -> Box<dyn Node>,
    ) -> Vec<Box<dyn Node>> {
        (0..self.n)
            .map(|i| {
                let me = NodeId(i as u16);
                match substitute(me) {
                    Some(adversary) => adversary,
                    None => honest(me),
                }
            })
            .collect()
    }

    /// Drive a node set to completion and extract per-node outcomes of the
    /// expected honest type `T` (substituted nodes yield `None`).
    fn finish_fd<T: 'static>(
        &self,
        nodes: Vec<Box<dyn Node>>,
        rounds: u32,
        extract: impl Fn(&T) -> Outcome,
    ) -> FdRunReport {
        let report = self.drive(nodes, rounds);
        let phases = crate::obs::PhaseBreakdown::from_drive(
            self.engine,
            report.round_marks,
            report.max_queue_depth,
            report.sched,
        );
        let stats = report.stats;
        let delay_log = report.delay_log;
        let outcomes = report
            .nodes
            .into_iter()
            .map(|boxed| {
                boxed
                    .into_any()
                    .downcast::<T>()
                    .ok()
                    .map(|node| extract(&node))
            })
            .collect();
        FdRunReport {
            outcomes,
            stats,
            used_fallback: Vec::new(),
            grades: Vec::new(),
            delay_log,
            phases,
        }
    }
}

/// A cluster plus a lazily established, cached key distribution: the
/// paper's "pay `3n(n−1)` once, then `n−1` per run" amortization as an
/// object.
///
/// The first executed spec whose protocol needs keys triggers the
/// setup-phase key distribution ([`Cluster::setup_keydist`]); every later
/// spec reuses the cached stores. [`Session::keydist_runs`] and
/// [`Session::messages_spent`] expose the accounting that experiment F1
/// (paper Fig. 1 economics) measures.
#[derive(Debug)]
pub struct Session {
    cluster: Cluster,
    keydist: Option<KeyDistReport>,
    keydist_runs: usize,
    runs: usize,
    run_messages: usize,
}

impl Session {
    /// Open a session on a cluster. No key distribution runs until the
    /// first spec that needs one.
    pub fn new(cluster: Cluster) -> Self {
        Session {
            cluster,
            keydist: None,
            keydist_runs: 0,
            runs: 0,
            run_messages: 0,
        }
    }

    /// Open a session with externally provided stores (e.g. the
    /// trusted-dealer baseline of [`Cluster::global_stores`]); no key
    /// distribution will run.
    pub fn with_keydist(cluster: Cluster, keydist: KeyDistReport) -> Self {
        Session {
            cluster,
            keydist: Some(keydist),
            keydist_runs: 0,
            runs: 0,
            run_messages: 0,
        }
    }

    /// The cluster this session executes on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Establish (or return the cached) key distribution.
    pub fn keydist(&mut self) -> &KeyDistReport {
        if self.keydist.is_none() {
            self.keydist = Some(self.cluster.setup_keydist());
            self.keydist_runs += 1;
        }
        self.keydist.as_ref().expect("just established")
    }

    /// The cached key distribution, if one was established or provided.
    pub fn keydist_report(&self) -> Option<&KeyDistReport> {
        self.keydist.as_ref()
    }

    /// Messages the session's key distribution cost, if one ran (or was
    /// provided).
    pub fn keydist_messages(&self) -> Option<usize> {
        self.keydist.as_ref().map(|kd| kd.stats.messages_total)
    }

    /// How many key distributions this session executed — the amortization
    /// claim is that this stays at 1 for any number of runs.
    pub fn keydist_runs(&self) -> usize {
        self.keydist_runs
    }

    /// Protocol runs executed so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Total messages spent: the (single) key distribution plus every
    /// protocol run — the cumulative-cost curve of paper Fig. 1.
    pub fn messages_spent(&self) -> usize {
        self.keydist_messages().unwrap_or(0) + self.run_messages
    }

    /// Execute one spec, reusing (or lazily establishing) the session's
    /// key distribution.
    pub fn run(&mut self, spec: &RunSpec) -> FdRunReport {
        let keys = if spec.protocol.needs_keys() {
            self.keydist();
            self.keydist.as_ref()
        } else {
            None
        };
        let report = self.cluster.run_with_keys(spec, keys);
        self.runs += 1;
        self.run_messages += report.stats.messages_total;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryKind, AdversarySpec};

    fn cluster(n: usize, t: usize) -> Cluster {
        Cluster::new(n, t, Arc::new(fd_crypto::SchnorrScheme::test_tiny()), 99)
    }

    #[test]
    fn session_amortizes_exactly_one_keydist() {
        let mut session = Session::new(cluster(6, 1));
        assert_eq!(session.keydist_runs(), 0);
        for k in 0..5u8 {
            let run = session.run(&RunSpec::new(Protocol::ChainFd, vec![k]));
            assert!(run.all_decided(&[k]));
            assert_eq!(run.stats.messages_total, metrics::chain_fd_messages(6));
        }
        assert_eq!(session.keydist_runs(), 1);
        assert_eq!(session.runs(), 5);
        assert_eq!(
            session.messages_spent(),
            metrics::keydist_messages(6) + 5 * metrics::chain_fd_messages(6)
        );
    }

    #[test]
    fn key_free_protocols_never_trigger_keydist() {
        let mut session = Session::new(cluster(8, 2));
        let run = session.run(&RunSpec::new(Protocol::NonAuthFd, b"v".to_vec()));
        assert!(run.all_decided(b"v"));
        assert_eq!(session.keydist_runs(), 0);
        assert_eq!(session.keydist_messages(), None);
    }

    #[test]
    fn one_shot_run_matches_session_run() {
        let c = cluster(5, 1);
        let spec = RunSpec::new(Protocol::DolevStrong, b"v".to_vec()).with_default_value(b"d");
        let one_shot = c.run(&spec);
        let mut session = Session::new(c);
        let amortized = session.run(&spec);
        assert_eq!(one_shot.to_json(), amortized.to_json());
    }

    #[test]
    fn every_protocol_runs_failure_free_through_the_spec() {
        for protocol in Protocol::ALL {
            let (n, t) = (9, 2); // admissible for the whole lineup
            let mut session = Session::new(cluster(n, t));
            let run = session.run(&RunSpec::new(protocol, b"v".to_vec()).with_default_value(
                // Small-range pays for non-default values; use the
                // input as default to keep the run failure-free-cheap
                // where the protocol allows it.
                b"d".to_vec(),
            ));
            assert!(run.all_decided(b"v"), "{protocol} failed");
            assert_eq!(
                run.stats.messages_total,
                protocol.expected_messages(n, t),
                "{protocol} missed its closed form"
            );
        }
    }

    #[test]
    fn scripted_adversary_reaches_the_run() {
        let mut session = Session::new(cluster(6, 1));
        let run = session.run(
            &RunSpec::new(Protocol::ChainFd, b"v".to_vec())
                .with_adversary(AdversarySpec::scripted(AdversaryKind::SilentRelay)),
        );
        assert!(run.outcomes[1].is_none(), "relay slot marked faulty");
        assert!(run.any_discovery(), "silent relay must be discovered");
    }

    #[test]
    fn equivocating_relay_is_discovered_never_silent() {
        for n in [5usize, 7, 9] {
            let t = (n - 1) / 3;
            let mut session = Session::new(cluster(n, t));
            let run = session.run(
                &RunSpec::new(Protocol::ChainFd, b"v".to_vec())
                    .with_adversary(AdversarySpec::scripted(AdversaryKind::Equivocate)),
            );
            let decided: std::collections::BTreeSet<Vec<u8>> = run
                .correct_outcomes()
                .iter()
                .filter_map(|o| o.decided().map(<[u8]>::to_vec))
                .collect();
            assert!(
                decided.len() <= 1 || run.any_discovery(),
                "n={n}: two-faced relay caused silent disagreement"
            );
            assert!(run.any_discovery(), "n={n}: equivocation went unnoticed");
        }
    }

    #[test]
    fn custom_adversary_escape_hatch_works() {
        use crate::adversary::SilentNode;
        let mut session = Session::new(cluster(5, 1));
        let spec = RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_adversary(
            AdversarySpec::custom(|id| {
                (id == NodeId(1)).then(|| Box::new(SilentNode { me: NodeId(1) }) as Box<dyn Node>)
            }),
        );
        let run = session.run(&spec);
        assert!(run.any_discovery());
    }

    #[test]
    #[should_panic(expected = "cannot speak protocol")]
    fn inapplicable_adversary_panics() {
        let c = cluster(5, 1);
        let spec = RunSpec::new(Protocol::DolevStrong, b"v".to_vec())
            .with_adversary(AdversarySpec::scripted(AdversaryKind::TamperBody));
        let _ = c.run(&spec);
    }

    #[test]
    fn report_json_is_deterministic_and_complete() {
        let c = cluster(5, 1);
        let spec = RunSpec::new(Protocol::FdToBa, b"v".to_vec());
        let a = c.run(&spec).to_json();
        let b = c.run(&spec).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"outcomes\""));
        assert!(a.contains("\"used_fallback\""));
        assert!(a.contains("\"grades\""));
    }
}
