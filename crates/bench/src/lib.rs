//! # fd-bench
//!
//! The experiment harness reproducing every quantitative claim of
//! [Borcherding 1995](https://doi.org/10.1109/ICDCS.1995.500023): each
//! experiment maps to a function here that produces its rows, the
//! `report` binary (`src/bin/report.rs`) renders them as markdown, and
//! the Criterion benches (`benches/`) cover the timing-based figures.
//!
//! Experiments, keyed to the paper's sections:
//!
//! * **T1** ([`t1_keydist`]) — key distribution cost: Fig. 1's protocol
//!   at `3n(n−1)` messages in 3 communication rounds (§3.1).
//! * **T2** ([`t2_fd_cost`]) / **F1** ([`f1_amortization`]) — per-run FD
//!   cost (`n−1` authenticated vs `(t+2)(n−1)` non-authenticated, §5)
//!   and the §6 amortization crossover of the one-time key distribution.
//! * **T3** ([`t3_rounds`]) — communication-round counts.
//! * **T5** ([`t5_small_range`]) — the small-value-range optimization.
//! * **T6** ([`t6_ba_cost`]) / **T7** ([`t7_agreement_costs`]) — the
//!   FD→BA extension at FD cost, against the Dolev–Strong, Phase-King,
//!   EIG, and degradable-agreement baselines (§7).
//! * **T8** ([`t8_fault_classes`]) / **T9** ([`t9_assumption_ablation`])
//!   — the fault hierarchy and deliberate N1 violations: everything is
//!   discovered or indistinguishable, never silent disagreement.
//! * **T10** ([`t10_wire_cost`]) — wire bytes across signature schemes
//!   (the paper's S1–S3 assumption instantiated by Schnorr/DSA/RSA).
//! * **T11** ([`t11_sweep`]) — the parallel scenario sweep's determinism
//!   across thread counts.
//! * **T12** ([`t12_large_n`]) — large-`n` scaling on the synchronous
//!   and discrete-event engines, which must agree on every count.
//! * **T13** ([`t13_sched_search`]) — adversarial scheduler search over
//!   chain FD and Dolev–Strong: the worst delivery schedule within the
//!   latency bounds never produces silent disagreement, and its
//!   certificate replays byte-identically.
//! * **F4** ([`f4_rotation`]) — key-rotation epochs vs the §6 crossover.
//!
//! T4 (the F1–F3/G1–G3 property matrix), F2 (signature-scheme timings),
//! and F3 (transport wall-clock) live directly in the `report` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fd_core::metrics;
use fd_core::runner::Cluster;
use fd_core::spec::{Protocol, RunSpec, Session};
use fd_crypto::{SchnorrScheme, SignatureScheme};
use std::sync::Arc;

/// The standard scheme used for message-count experiments (counts are
/// crypto-independent; the tiny group keeps them fast).
pub fn count_scheme() -> Arc<dyn SignatureScheme> {
    Arc::new(SchnorrScheme::test_tiny())
}

/// Build the standard cluster used across experiments.
pub fn cluster(n: usize, t: usize, seed: u64) -> Cluster {
    Cluster::new(n, t, count_scheme(), seed)
}

/// Fault budget used in the sweeps: `t = ⌊(n−1)/3⌋`, the classic bound.
pub fn default_t(n: usize) -> usize {
    ((n - 1) / 3).min(n.saturating_sub(2))
}

/// One row of experiment T1 (key distribution cost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T1Row {
    /// System size.
    pub n: usize,
    /// Measured messages.
    pub measured: usize,
    /// The paper's `3n(n−1)`.
    pub formula: usize,
    /// Measured communication rounds.
    pub comm_rounds: usize,
}

/// Run experiment T1 for the given sizes.
pub fn t1_keydist(sizes: &[usize]) -> Vec<T1Row> {
    sizes
        .iter()
        .map(|&n| {
            let c = cluster(n, default_t(n), 1);
            let kd = c.run_key_distribution();
            T1Row {
                n,
                measured: kd.stats.messages_total,
                formula: metrics::keydist_messages(n),
                comm_rounds: kd.stats.per_round.iter().filter(|&&x| x > 0).count(),
            }
        })
        .collect()
}

/// One row of experiment T2 (per-run FD cost, authenticated vs not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T2Row {
    /// System size.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// Measured authenticated chain FD messages.
    pub auth_measured: usize,
    /// Measured non-authenticated witness-relay messages.
    pub non_auth_measured: usize,
    /// Formulas `n−1` and `(t+2)(n−1)`.
    pub auth_formula: usize,
    /// Non-authenticated formula value.
    pub non_auth_formula: usize,
}

/// Run experiment T2 for the given sizes.
pub fn t2_fd_cost(sizes: &[usize]) -> Vec<T2Row> {
    sizes
        .iter()
        .map(|&n| {
            let t = default_t(n);
            let mut session = Session::new(cluster(n, t, 2));
            let auth = session.run(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()));
            let non_auth = session.run(&RunSpec::new(Protocol::NonAuthFd, b"v".to_vec()));
            assert!(auth.all_decided(b"v") && non_auth.all_decided(b"v"));
            T2Row {
                n,
                t,
                auth_measured: auth.stats.messages_total,
                non_auth_measured: non_auth.stats.messages_total,
                auth_formula: metrics::chain_fd_messages(n),
                non_auth_formula: metrics::non_auth_messages(n, t),
            }
        })
        .collect()
}

/// One point of figure F1 (cumulative messages over k runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct F1Point {
    /// Number of FD runs so far.
    pub k: usize,
    /// Cumulative messages with one-time key distribution + chain FD.
    pub cumulative_auth: usize,
    /// Cumulative messages with non-authenticated runs only.
    pub cumulative_non_auth: usize,
}

/// Run figure F1 for one system shape, measuring runs 1..=k_max.
pub fn f1_amortization(n: usize, t: usize, k_max: usize) -> (Vec<F1Point>, usize) {
    let mut session = Session::new(cluster(n, t, 3));
    let mut cumulative_auth = session.keydist().stats.messages_total;
    let mut cumulative_non_auth = 0usize;
    let mut points = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        cumulative_auth += session
            .run(&RunSpec::new(Protocol::ChainFd, vec![k as u8]))
            .stats
            .messages_total;
        cumulative_non_auth += session
            .run(&RunSpec::new(Protocol::NonAuthFd, vec![k as u8]))
            .stats
            .messages_total;
        points.push(F1Point {
            k,
            cumulative_auth,
            cumulative_non_auth,
        });
    }
    assert_eq!(
        session.keydist_runs(),
        1,
        "amortization broken: the session re-ran key distribution"
    );
    let crossover = points
        .iter()
        .find(|p| p.cumulative_auth < p.cumulative_non_auth)
        .map(|p| p.k)
        .unwrap_or(usize::MAX);
    (points, crossover)
}

/// One row of experiment T3 (round counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T3Row {
    /// Protocol name.
    pub protocol: &'static str,
    /// Measured communication rounds.
    pub measured_rounds: usize,
    /// Analytical round count.
    pub formula_rounds: usize,
}

/// Run experiment T3 on one shape.
pub fn t3_rounds(n: usize, t: usize) -> Vec<T3Row> {
    let mut session = Session::new(cluster(n, t, 4));
    let comm = |stats: &fd_simnet::NetStats| stats.per_round.iter().filter(|&&x| x > 0).count();
    let fd = session.run(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()));
    let na = session.run(&RunSpec::new(Protocol::NonAuthFd, b"v".to_vec()));
    let kd_rounds = comm(&session.keydist().stats);
    vec![
        T3Row {
            protocol: "key distribution",
            measured_rounds: kd_rounds,
            formula_rounds: metrics::KEYDIST_COMM_ROUNDS as usize,
        },
        T3Row {
            protocol: "chain FD (auth)",
            measured_rounds: comm(&fd.stats),
            formula_rounds: metrics::chain_fd_comm_rounds(t) as usize,
        },
        T3Row {
            protocol: "witness relay (non-auth)",
            measured_rounds: comm(&na.stats),
            formula_rounds: 2,
        },
    ]
}

/// One row of experiment T5 (small-range workload dependence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T5Row {
    /// Share of runs carrying the default value, in percent.
    pub default_pct: usize,
    /// Total messages over the workload using the small-range protocol.
    pub small_range_total: usize,
    /// Total messages running chain FD for every value.
    pub chain_fd_total: usize,
}

/// Run experiment T5: 100-run workloads with varying default share.
pub fn t5_small_range(n: usize, t: usize) -> Vec<T5Row> {
    let mut session = Session::new(cluster(n, t, 5));
    let mut rows = Vec::new();
    for default_pct in [50usize, 80, 90, 95, 99] {
        let mut small_total = 0usize;
        let mut chain_total = 0usize;
        for k in 0..100usize {
            // Deterministic workload: the first `default_pct` runs carry
            // the default value.
            let v = if k < default_pct { vec![0] } else { vec![1] };
            small_total += session
                .run(&RunSpec::new(Protocol::SmallRange, v.clone()).with_default_value(vec![0]))
                .stats
                .messages_total;
            chain_total += session
                .run(&RunSpec::new(Protocol::ChainFd, v))
                .stats
                .messages_total;
        }
        rows.push(T5Row {
            default_pct,
            small_range_total: small_total,
            chain_fd_total: chain_total,
        });
    }
    rows
}

/// One row of experiment T6 (BA failure-free cost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T6Row {
    /// System size.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// FD→BA extension messages (failure-free).
    pub fd_to_ba: usize,
    /// Plain chain FD messages.
    pub chain_fd: usize,
    /// Dolev–Strong messages (failure-free).
    pub dolev_strong: usize,
}

/// Run experiment T6 for the given sizes.
pub fn t6_ba_cost(sizes: &[usize]) -> Vec<T6Row> {
    sizes
        .iter()
        .map(|&n| {
            let t = default_t(n);
            let mut session = Session::new(cluster(n, t, 6));
            let with_default =
                |p: Protocol| RunSpec::new(p, b"v".to_vec()).with_default_value(b"d".to_vec());
            let ba = session.run(&with_default(Protocol::FdToBa));
            let fd = session.run(&with_default(Protocol::ChainFd));
            let ds = session.run(&with_default(Protocol::DolevStrong));
            T6Row {
                n,
                t,
                fd_to_ba: ba.stats.messages_total,
                chain_fd: fd.stats.messages_total,
                dolev_strong: ds.stats.messages_total,
            }
        })
        .collect()
}

/// One row of figure F4 (key-rotation policy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct F4Row {
    /// Epoch length (chain-FD runs between rotations).
    pub runs_per_epoch: usize,
    /// Measured cumulative messages over the whole workload with rotation.
    pub rotated_total: usize,
    /// Closed form `epochs · (3n(n−1) + k·(n−1))`.
    pub rotated_formula: usize,
    /// Non-authenticated baseline for the same number of runs.
    pub non_auth_total: usize,
}

/// Run figure F4: a fixed workload of `total_runs` agreement rounds,
/// executed under different key-rotation epoch lengths (see
/// `fd_core::epoch`). Epoch lengths that divide `total_runs` are required
/// so every policy performs exactly the same workload.
pub fn f4_rotation(n: usize, t: usize, total_runs: usize) -> Vec<F4Row> {
    use fd_core::epoch::EpochManager;

    let mut rows: Vec<F4Row> = Vec::new();
    for runs_per_epoch in [1usize, 5, 10, 30, total_runs] {
        if !total_runs.is_multiple_of(runs_per_epoch)
            || rows.iter().any(|r| r.runs_per_epoch == runs_per_epoch)
        {
            continue;
        }
        let epochs = total_runs / runs_per_epoch;
        let mut manager = EpochManager::new(cluster(n, t, 44));
        for _ in 0..epochs {
            manager.rotate();
            for k in 0..runs_per_epoch {
                let run = manager.run_round(vec![k as u8]);
                assert!(run.all_decided(&[k as u8]));
            }
        }
        rows.push(F4Row {
            runs_per_epoch,
            rotated_total: manager.messages_spent(),
            rotated_formula: metrics::cumulative_with_rotations(n, epochs, runs_per_epoch),
            non_auth_total: metrics::cumulative_non_auth(n, t, total_runs),
        });
    }
    rows
}

/// One row of experiment T7 (agreement-protocol comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T7Row {
    /// Protocol name.
    pub protocol: &'static str,
    /// Whether the protocol needs (local) authentication.
    pub authenticated: bool,
    /// Resilience requirement, human-readable.
    pub resilience: &'static str,
    /// Guarantee flavor, human-readable.
    pub guarantee: &'static str,
    /// Measured failure-free messages.
    pub messages: usize,
    /// Analytical failure-free messages.
    pub messages_formula: usize,
    /// Measured communication rounds.
    pub comm_rounds: usize,
}

/// Run experiment T7 on one shape (requires `n > 4t` so every protocol in
/// the lineup is admissible).
///
/// # Panics
///
/// Panics if `n <= 4t`, or if any protocol fails to decide the sender's
/// value in this failure-free run.
pub fn t7_agreement_costs(n: usize, t: usize) -> Vec<T7Row> {
    use fd_core::ba::{EigNode, EigParams};
    use fd_simnet::{Node, NodeId, SyncNetwork};

    assert!(n > 4 * t, "T7 lineup requires n > 4t");
    let mut session = Session::new(cluster(n, t, 7));
    let comm = |stats: &fd_simnet::NetStats| stats.per_round.iter().filter(|&&x| x > 0).count();
    let with_default =
        |p: Protocol| RunSpec::new(p, b"v".to_vec()).with_default_value(b"d".to_vec());

    let fd = session.run(&with_default(Protocol::ChainFd));
    let ba = session.run(&with_default(Protocol::FdToBa));
    let dg = session.run(&with_default(Protocol::Degradable));
    let ds = session.run(&with_default(Protocol::DolevStrong));
    let pk = session.run(&with_default(Protocol::PhaseKing));
    for (name, run) in [
        ("fd", &fd),
        ("ba", &ba),
        ("dg", &dg),
        ("ds", &ds),
        ("pk", &pk),
    ] {
        assert!(run.all_decided(b"v"), "{name} failed its failure-free run");
    }

    // EIG has no Cluster entry point (it needs no keys); run it directly.
    let eig_stats = {
        let params = EigParams::new(n, t, b"d".to_vec());
        let rounds = params.rounds();
        let nodes: Vec<Box<dyn Node>> = (0..n)
            .map(|i| {
                let me = NodeId(i as u16);
                Box::new(EigNode::new(
                    me,
                    params.clone(),
                    (me == params.sender).then(|| b"v".to_vec()),
                )) as Box<dyn Node>
            })
            .collect();
        let mut net = SyncNetwork::new(nodes);
        net.run_until_done(rounds);
        net.stats().clone()
    };
    vec![
        T7Row {
            protocol: "chain FD (Fig. 2)",
            authenticated: true,
            resilience: "t < n−1",
            guarantee: "failure discovery (F1–F3)",
            messages: fd.stats.messages_total,
            messages_formula: metrics::chain_fd_messages(n),
            comm_rounds: comm(&fd.stats),
        },
        T7Row {
            protocol: "FD→BA extension",
            authenticated: true,
            resilience: "n > 3t (fallback)",
            guarantee: "full agreement",
            messages: ba.stats.messages_total,
            messages_formula: metrics::chain_fd_messages(n),
            comm_rounds: comm(&ba.stats),
        },
        T7Row {
            protocol: "degradable (crusader)",
            authenticated: true,
            resilience: "n > 3t",
            guarantee: "degraded agreement (≤2 values)",
            messages: dg.stats.messages_total,
            messages_formula: metrics::degradable_messages(n),
            comm_rounds: comm(&dg.stats),
        },
        T7Row {
            protocol: "Dolev–Strong",
            authenticated: true,
            resilience: "t < n",
            guarantee: "full agreement",
            messages: ds.stats.messages_total,
            messages_formula: metrics::dolev_strong_messages(n),
            comm_rounds: comm(&ds.stats),
        },
        T7Row {
            protocol: "Phase King",
            authenticated: false,
            resilience: "n > 4t",
            guarantee: "full agreement",
            messages: pk.stats.messages_total,
            messages_formula: metrics::phase_king_messages(n, t),
            comm_rounds: comm(&pk.stats),
        },
        T7Row {
            protocol: "EIG / OM(t)",
            authenticated: false,
            resilience: "n > 3t",
            guarantee: "full agreement",
            messages: eig_stats.messages_total,
            messages_formula: eig_stats.messages_total, // no closed form printed
            comm_rounds: eig_stats.per_round.iter().filter(|&&x| x > 0).count(),
        },
    ]
}

/// One row of experiment T8 (fault-class sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T8Row {
    /// Fault class label.
    pub fault_class: &'static str,
    /// Runs in which at least one correct node discovered a failure.
    pub runs_discovered: usize,
    /// Runs in which every correct node decided the sender's value.
    pub runs_all_decided: usize,
    /// Runs with two correct nodes deciding different values and nobody
    /// discovering — must be zero for the paper's properties to hold.
    pub silent_disagreements: usize,
    /// Total runs.
    pub runs: usize,
}

/// Run experiment T8: chain FD under the benign→byzantine fault hierarchy,
/// `seeds` runs per class, faulty node is the first chain relay.
///
/// Crash, tamper, and silence are the scripted
/// [`AdversarySpec`](fd_core::adversary::AdversarySpec) kinds; the two
/// benign wrappers without a scripted kind (omission, laggard) use the
/// custom-substitution escape hatch.
pub fn t8_fault_classes(n: usize, t: usize, seeds: u64) -> Vec<T8Row> {
    use fd_core::adversary::{AdversaryKind, AdversarySpec, LaggardNode, OmissiveNode};
    use fd_core::fd::{ChainFdNode, ChainFdParams};
    use fd_simnet::{Node, NodeId};

    let faulty = NodeId(1);

    let classes: Vec<&'static str> = vec![
        "crash-stop (mid-relay)",
        "send-omission (30%)",
        "timing (one round late)",
        "byzantine (tamper body)",
        "byzantine (silent)",
    ];

    let mut rows = Vec::new();
    for label in classes {
        let mut discovered = 0usize;
        let mut all_decided = 0usize;
        let mut silent_disagreement = 0usize;
        for seed in 0..seeds {
            let mut session = Session::new(cluster(n, t, seed));
            // An honest relay automaton for the benign-fault wrappers,
            // movable into a `'static` custom substitution.
            let honest_relay = {
                let scheme = Arc::clone(&session.cluster().scheme);
                let store = session.keydist().store(faulty).clone();
                let ring = session.cluster().keyring(faulty);
                let params = ChainFdParams::new(n, t);
                move || -> Box<dyn Node> {
                    Box::new(ChainFdNode::new(
                        faulty,
                        params.clone(),
                        Arc::clone(&scheme),
                        store.clone(),
                        ring.clone(),
                        None,
                    ))
                }
            };
            let adversary = match label {
                "crash-stop (mid-relay)" => AdversarySpec::scripted(AdversaryKind::CrashRelay),
                "send-omission (30%)" => AdversarySpec::custom(move |id| {
                    (id == faulty).then(|| {
                        Box::new(OmissiveNode::new(honest_relay(), seed, 300)) as Box<dyn Node>
                    })
                }),
                "timing (one round late)" => AdversarySpec::custom(move |id| {
                    (id == faulty)
                        .then(|| Box::new(LaggardNode::new(honest_relay())) as Box<dyn Node>)
                }),
                "byzantine (tamper body)" => AdversarySpec::scripted(AdversaryKind::TamperBody),
                _ => AdversarySpec::scripted(AdversaryKind::SilentRelay),
            };
            let run = session
                .run(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()).with_adversary(adversary));
            let outs = run.correct_outcomes();
            let any_disc = outs.iter().any(|o| o.is_discovered());
            let decided: std::collections::BTreeSet<Vec<u8>> = outs
                .iter()
                .filter_map(|o| o.decided().map(<[u8]>::to_vec))
                .collect();
            if any_disc {
                discovered += 1;
            } else if decided.len() <= 1 {
                all_decided += 1;
            }
            if !any_disc && decided.len() > 1 {
                silent_disagreement += 1;
            }
        }
        rows.push(T8Row {
            fault_class: label,
            runs_discovered: discovered,
            runs_all_decided: all_decided,
            silent_disagreements: silent_disagreement,
            runs: seeds as usize,
        });
    }
    rows
}

/// One row of experiment T9 (N1 assumption ablation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T9Row {
    /// Kind of injected link fault.
    pub fault_kind: &'static str,
    /// Number of injected faults per run.
    pub faults_per_run: usize,
    /// Runs where a correct node discovered a failure.
    pub runs_discovered: usize,
    /// Runs indistinguishable from failure-free (fault hit a dead link or
    /// duplicate was absorbed).
    pub runs_clean: usize,
    /// Silent disagreements (must be zero).
    pub silent_disagreements: usize,
    /// Total runs.
    pub runs: usize,
}

/// Run experiment T9: inject seeded random N1 violations into failure-free
/// chain-FD runs and classify the outcomes.
pub fn t9_assumption_ablation(n: usize, t: usize, seeds: u64) -> Vec<T9Row> {
    use fd_core::fd::{ChainFdNode, ChainFdParams};
    use fd_simnet::fault::{FaultPlan, LinkFault};
    use fd_simnet::{Node, NodeId, SyncNetwork};

    let kinds: Vec<(&'static str, LinkFault, usize)> = vec![
        ("drop (random link)", LinkFault::Drop, 1),
        ("drop ×3 (random links)", LinkFault::Drop, 3),
        (
            "corrupt (random link)",
            LinkFault::Corrupt { offset: 0, mask: 1 },
            1,
        ),
        ("duplicate (random link)", LinkFault::Duplicate, 1),
        ("drop (targeted chain link)", LinkFault::Drop, 1),
        (
            "corrupt (targeted chain link)",
            LinkFault::Corrupt { offset: 0, mask: 1 },
            1,
        ),
    ];

    let mut rows = Vec::new();
    for (label, kind, k) in kinds {
        let targeted = label.contains("targeted");
        let mut discovered = 0usize;
        let mut clean = 0usize;
        let mut silent_disagreement = 0usize;
        for seed in 0..seeds {
            let c = cluster(n, t, seed);
            let kd = c.run_key_distribution();
            let params = ChainFdParams::new(n, t);
            let rounds = params.rounds();
            let nodes: Vec<Box<dyn Node>> = (0..n)
                .map(|i| {
                    let me = NodeId(i as u16);
                    Box::new(ChainFdNode::new(
                        me,
                        params.clone(),
                        Arc::clone(&c.scheme),
                        kd.store(me).clone(),
                        c.keyring(me),
                        (me == params.sender).then(|| b"v".to_vec()),
                    )) as Box<dyn Node>
                })
                .collect();
            let mut net = SyncNetwork::new(nodes);
            let plan = if targeted {
                // Hit a link the chain protocol provably uses: the hop
                // P_r -> P_{r+1} for a seeded r in 0..t, or a
                // dissemination edge P_t -> P_j.
                let r = (seed % (t as u64 + 1)) as u32;
                let (from, to) = if r < t as u32 {
                    (NodeId(r as u16), NodeId(r as u16 + 1))
                } else {
                    (NodeId(t as u16), NodeId((t + 1) as u16))
                };
                FaultPlan::new().with(r, from, to, kind)
            } else {
                FaultPlan::random(n, rounds, k, seed, &[kind])
            };
            net.set_fault_plan(plan);
            net.run_until_done(rounds);
            let outs: Vec<fd_core::Outcome> = net
                .into_nodes()
                .into_iter()
                .map(|b| {
                    b.into_any()
                        .downcast::<ChainFdNode>()
                        .expect("ChainFdNode")
                        .outcome()
                        .clone()
                })
                .collect();
            let any_disc = outs.iter().any(|o| o.is_discovered());
            let decided: std::collections::BTreeSet<Vec<u8>> = outs
                .iter()
                .filter_map(|o| o.decided().map(<[u8]>::to_vec))
                .collect();
            if any_disc {
                discovered += 1;
            } else if decided.len() <= 1 {
                clean += 1;
            } else {
                silent_disagreement += 1;
            }
        }
        rows.push(T9Row {
            fault_kind: label,
            faults_per_run: k,
            runs_discovered: discovered,
            runs_clean: clean,
            silent_disagreements: silent_disagreement,
            runs: seeds as usize,
        });
    }
    rows
}

/// One row of experiment T10 (wire cost across signature schemes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T10Row {
    /// Scheme name.
    pub scheme: String,
    /// Encoded public key (test predicate) bytes.
    pub pk_bytes: usize,
    /// Encoded signature bytes.
    pub sig_bytes: usize,
    /// Key distribution wire bytes for the given `n`.
    pub keydist_bytes: usize,
    /// One chain-FD run's wire bytes for the given `n`.
    pub chain_fd_bytes: usize,
}

/// Run experiment T10 for one system size across schemes.
pub fn t10_wire_cost(n: usize, t: usize, schemes: Vec<Arc<dyn SignatureScheme>>) -> Vec<T10Row> {
    schemes
        .into_iter()
        .map(|scheme| {
            let mut session = Session::new(Cluster::new(n, t, Arc::clone(&scheme), 10));
            let fd = session.run(&RunSpec::new(Protocol::ChainFd, b"v".to_vec()));
            assert!(fd.all_decided(b"v"));
            T10Row {
                scheme: scheme.name(),
                pk_bytes: scheme.public_key_len(),
                sig_bytes: scheme.signature_len(),
                keydist_bytes: session.keydist().stats.bytes_total,
                chain_fd_bytes: fd.stats.bytes_total,
            }
        })
        .collect()
}

/// One row of experiment T11 (parallel scenario sweep): the default
/// `lafd sweep` matrix executed at a given thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T11Row {
    /// Worker threads used.
    pub threads: usize,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Scenarios whose checks all passed.
    pub ok: usize,
    /// Total messages across all runs (including key distributions).
    pub messages_total: usize,
    /// Whether this thread count reproduced the single-thread report
    /// byte-for-byte (the sweep's determinism contract).
    pub matches_serial: bool,
}

/// Run experiment T11: the default sweep matrix at each thread count,
/// checking that parallelism never changes the report.
pub fn t11_sweep(thread_counts: &[usize]) -> Vec<T11Row> {
    use fd_core::sweep::{run_sweep, SweepMatrix};

    let matrix = SweepMatrix::default_matrix();
    let serial = run_sweep(&matrix, 1);
    let serial_json = serial.to_json();
    thread_counts
        .iter()
        .map(|&threads| {
            let report = if threads == 1 {
                serial.clone()
            } else {
                run_sweep(&matrix, threads)
            };
            T11Row {
                threads,
                scenarios: report.rows.len(),
                ok: report.rows.iter().filter(|r| r.ok()).count(),
                messages_total: report.messages_total(),
                matches_serial: report.to_json() == serial_json,
            }
        })
        .collect()
}

/// One row of experiment T12 (large-n scaling on both engines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T12Row {
    /// System size.
    pub n: usize,
    /// Fault budget (`⌊(n−1)/3⌋`).
    pub t: usize,
    /// Engine that executed the run.
    pub engine: &'static str,
    /// Measured messages of the chain-FD run.
    pub messages: usize,
    /// The paper's `n − 1`.
    pub formula: usize,
    /// Measured communication rounds.
    pub comm_rounds: usize,
    /// Whether every node decided the sender's value.
    pub all_decided: bool,
    /// Wall-clock of the run in microseconds (indicative only).
    pub micros: u128,
}

/// Run experiment T12: chain FD at large `n` on the synchronous and the
/// discrete-event engine. Dealer-provided stores replace the `3n(n−1)`
/// key distribution so the measurement isolates how the *run* scales; the
/// two engines must agree on every count (the timing column is the one
/// legitimate difference).
pub fn t12_large_n(sizes: &[usize]) -> Vec<T12Row> {
    use fd_core::runner::KeyDistReport;
    use fd_simnet::{Engine, NetStats};

    let mut rows = Vec::new();
    for &n in sizes {
        let t = default_t(n);
        let stores = cluster(n, t, 1).global_stores();
        for engine in [Engine::Sync, Engine::Event] {
            let c = cluster(n, t, 1).with_engine(engine);
            let kd = KeyDistReport {
                stores: stores.iter().cloned().map(Some).collect(),
                stats: NetStats::new(n),
                anomalies: Vec::new(),
                predicates: None,
            };
            let mut session = Session::with_keydist(c, kd);
            let start = std::time::Instant::now();
            let run = session.run(&RunSpec::new(Protocol::ChainFd, b"scale".to_vec()));
            let micros = start.elapsed().as_micros();
            rows.push(T12Row {
                n,
                t,
                engine: engine.name(),
                messages: run.stats.messages_total,
                formula: metrics::chain_fd_messages(n),
                comm_rounds: run.stats.per_round.iter().filter(|&&x| x > 0).count(),
                all_decided: run.all_decided(b"scale"),
                micros,
            });
        }
    }
    rows
}

/// One row of experiment T13 (adversarial scheduler search).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T13Row {
    /// Protocol under attack.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Fault budget (`⌊(n−1)/3⌋`).
    pub t: usize,
    /// Search strategy.
    pub strategy: &'static str,
    /// Episodes the search executed.
    pub episodes: usize,
    /// Episodes distinguishable from a clean run (loud findings).
    pub findings: usize,
    /// Objective label of the worst schedule found.
    pub best_score: String,
    /// Message count of the worst schedule's run.
    pub best_messages: usize,
    /// Whether any episode exhibited silent disagreement — must be false
    /// for the paper's properties to hold.
    pub silent_found: bool,
    /// Whether the worst schedule's certificate replayed exactly.
    pub replay_ok: bool,
}

/// Run experiment T13: adversarial scheduler search (`fd_core::schedsearch`)
/// over chain FD and the Dolev–Strong broadcast BA baseline, under
/// `jitter:2` latency, with both strategies and `budget` protocol
/// executions per search.
///
/// Loud outcomes (discovered timing failures, fallback engagement,
/// message-count anomalies) are recorded as findings; the experiment's
/// claim is that no schedule within the latency bounds ever produces
/// *silent* disagreement, and that every worst-schedule certificate
/// replays byte-identically.
pub fn t13_sched_search(sizes: &[usize], budget: usize) -> Vec<T13Row> {
    use fd_core::schedsearch::{run_search, SearchConfig, Strategy};
    use fd_core::sweep::Protocol;

    let mut rows = Vec::new();
    for protocol in [Protocol::ChainFd, Protocol::DolevStrong] {
        for &n in sizes {
            let t = default_t(n);
            for strategy in Strategy::ALL {
                let config = SearchConfig {
                    strategy,
                    budget,
                    ..SearchConfig::new(protocol, n, t, 13)
                };
                let report = run_search(&config).expect("T13 configs are admissible");
                rows.push(T13Row {
                    protocol: protocol.name(),
                    n,
                    t,
                    strategy: strategy.name(),
                    episodes: report.episodes.len(),
                    findings: report.findings().len(),
                    best_score: report.best_score.label(),
                    best_messages: report.best_messages,
                    silent_found: report.silent_found(),
                    replay_ok: report.replay_ok,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_matches_formula() {
        for row in t1_keydist(&[4, 6, 8]) {
            assert_eq!(row.measured, row.formula);
            assert_eq!(row.comm_rounds, 3);
        }
    }

    #[test]
    fn t2_auth_beats_non_auth() {
        for row in t2_fd_cost(&[4, 8, 12]) {
            assert_eq!(row.auth_measured, row.auth_formula);
            assert_eq!(row.non_auth_measured, row.non_auth_formula);
            assert!(row.auth_measured < row.non_auth_measured);
        }
    }

    #[test]
    fn f1_crossover_finite_and_correct() {
        let (points, crossover) = f1_amortization(8, 2, 40);
        assert!(crossover <= 40, "crossover within horizon");
        assert_eq!(
            crossover,
            fd_core::metrics::amortization_crossover(8, 2).unwrap()
        );
        assert!(
            points.last().unwrap().cumulative_auth < points.last().unwrap().cumulative_non_auth
        );
    }

    #[test]
    fn t3_rounds_match() {
        for row in t3_rounds(7, 2) {
            assert_eq!(row.measured_rounds, row.formula_rounds, "{}", row.protocol);
        }
    }

    #[test]
    fn t5_small_range_wins_at_high_default_share() {
        let rows = t5_small_range(6, 1);
        let last = rows.last().unwrap(); // 99% defaults
        assert!(last.small_range_total < last.chain_fd_total);
    }

    #[test]
    fn t6_extension_at_fd_cost() {
        for row in t6_ba_cost(&[4, 7]) {
            assert_eq!(row.fd_to_ba, row.chain_fd);
            assert!(row.dolev_strong > row.fd_to_ba);
        }
    }

    #[test]
    fn f4_rotation_measured_equals_formula() {
        let rows = f4_rotation(8, 2, 30);
        assert!(!rows.is_empty());
        for row in &rows {
            assert_eq!(row.rotated_total, row.rotated_formula);
        }
        // Rotating every run loses to the baseline; long epochs win.
        assert!(rows.first().unwrap().rotated_total > rows.first().unwrap().non_auth_total);
        assert!(rows.last().unwrap().rotated_total < rows.last().unwrap().non_auth_total);
    }

    #[test]
    fn t7_formulas_and_ordering() {
        let rows = t7_agreement_costs(9, 2);
        for row in &rows {
            assert_eq!(row.messages, row.messages_formula, "{}", row.protocol);
        }
        // The paper's ordering: FD (and its BA extension) is the cheapest;
        // non-auth full agreement is the most expensive.
        let msg = |name: &str| {
            rows.iter()
                .find(|r| r.protocol.starts_with(name))
                .unwrap()
                .messages
        };
        assert!(msg("chain FD") <= msg("FD→BA"));
        assert!(msg("FD→BA") < msg("degradable"));
        assert!(msg("degradable") <= msg("Dolev–Strong"));
        assert!(msg("Dolev–Strong") < msg("Phase King"));
    }

    #[test]
    fn t8_no_silent_disagreement_in_any_class() {
        for row in t8_fault_classes(6, 2, 10) {
            assert_eq!(
                row.silent_disagreements, 0,
                "{} produced silent disagreement",
                row.fault_class
            );
            assert_eq!(row.runs_discovered + row.runs_all_decided, row.runs);
        }
    }

    #[test]
    fn t9_violations_never_silent() {
        for row in t9_assumption_ablation(6, 2, 10) {
            assert_eq!(
                row.silent_disagreements, 0,
                "{} produced silent disagreement",
                row.fault_kind
            );
            assert_eq!(row.runs_discovered + row.runs_clean, row.runs);
        }
    }

    #[test]
    fn t11_sweep_parallel_matches_serial() {
        let rows = t11_sweep(&[1, 4]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.ok, row.scenarios, "threads={}", row.threads);
            assert!(row.matches_serial, "threads={}", row.threads);
        }
        assert_eq!(rows[0].messages_total, rows[1].messages_total);
    }

    #[test]
    fn t12_engines_agree_at_scale() {
        let rows = t12_large_n(&[32, 64]);
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            let (sync, event) = (&pair[0], &pair[1]);
            assert_eq!(sync.engine, "sync");
            assert_eq!(event.engine, "event");
            for row in pair {
                assert_eq!(row.messages, row.formula, "{row:?}");
                assert_eq!(row.comm_rounds, row.t + 1, "{row:?}");
                assert!(row.all_decided, "{row:?}");
            }
            assert_eq!(sync.messages, event.messages);
            assert_eq!(sync.comm_rounds, event.comm_rounds);
        }
    }

    #[test]
    fn t13_search_never_finds_silent_disagreement() {
        let rows = t13_sched_search(&[8, 16], 6);
        assert_eq!(rows.len(), 8); // 2 protocols × 2 sizes × 2 strategies
        for row in &rows {
            assert!(
                !row.silent_found,
                "{} n={} {}: search found silent disagreement",
                row.protocol, row.n, row.strategy
            );
            assert!(
                row.replay_ok,
                "{} n={} {}: certificate did not replay",
                row.protocol, row.n, row.strategy
            );
            assert_eq!(row.episodes, 6);
        }
        // Under jitter:2 the timing faults are *discovered*: at least one
        // search must have surfaced a loud finding.
        assert!(rows.iter().any(|r| r.findings > 0));
    }

    #[test]
    fn t10_bytes_scale_with_scheme() {
        let rows = t10_wire_cost(
            5,
            1,
            vec![
                Arc::new(SchnorrScheme::test_tiny()),
                Arc::new(fd_crypto::DsaScheme::test_tiny()),
            ],
        );
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.keydist_bytes > row.chain_fd_bytes);
            assert!(row.pk_bytes > 0 && row.sig_bytes > 0);
        }
        // Same group ⇒ same sizes for Schnorr and DSA.
        assert_eq!(rows[0].sig_bytes, rows[1].sig_bytes);
    }
}
