//! Regenerate every experiment table and figure of `EXPERIMENTS.md` as
//! markdown on stdout.
//!
//! ```sh
//! cargo run -p fd-bench --bin report            # everything
//! cargo run -p fd-bench --bin report -- t1 f1   # selected experiments
//! ```
//!
//! Timing-based figures (F2, F3) are covered by the Criterion benches; this
//! binary prints their deterministic companions (operation counts).

use fd_bench::{
    f1_amortization, f4_rotation, t10_wire_cost, t11_sweep, t12_large_n, t13_sched_search,
    t1_keydist, t2_fd_cost, t3_rounds, t5_small_range, t6_ba_cost, t7_agreement_costs,
    t8_fault_classes, t9_assumption_ablation,
};
use fd_core::adversary::{
    AdversaryKind, AdversarySpec, ChainFdAdversary, ChainMisbehavior, EquivocatingKeyDist,
    LaggardNode, OmissiveNode,
};
use fd_core::fd::ChainFdNode;
use fd_core::fd::ChainFdParams;
use fd_core::keys::KeyStore;
use fd_core::keys::Keyring;
use fd_core::props::check_fd;
use fd_core::runner::Cluster;
use fd_core::spec::{Protocol, RunSpec};
use fd_crypto::{RsaScheme, SchnorrScheme, SignatureScheme};
use fd_simnet::{Node, NodeId};
use std::sync::Arc;
use std::time::Instant;

const SIZES: &[usize] = &[4, 8, 16, 32, 48, 64];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |key: &str| args.is_empty() || args.iter().any(|a| a == key);

    println!("# local-auth-fd experiment report\n");
    println!(
        "Borcherding, \"Efficient Failure Discovery with Limited Authentication\" (ICDCS 1995)."
    );
    println!("All counts regenerated deterministically; formulas from the paper.\n");

    if want("t1") {
        t1();
    }
    if want("t2") {
        t2();
    }
    if want("f1") {
        f1();
    }
    if want("t3") {
        t3();
    }
    if want("t4") {
        t4();
    }
    if want("f2") {
        f2();
    }
    if want("f3") {
        f3();
    }
    if want("t5") {
        t5();
    }
    if want("t6") {
        t6();
    }
    if want("t7") {
        t7();
    }
    if want("t8") {
        t8();
    }
    if want("t9") {
        t9();
    }
    if want("t10") {
        t10();
    }
    if want("f4") {
        f4();
    }
    if want("t11") {
        t11();
    }
    if want("t12") {
        t12();
    }
    if want("t13") {
        t13();
    }
}

fn t13() {
    println!("## T13 — adversarial scheduler search (chain FD & Dolev–Strong BA)\n");
    println!(
        "`fd_core::schedsearch` hunts for the delivery schedule within the\n\
         `jitter:2` latency bounds that maximizes disagreement (silent >\n\
         loud > fallback > message anomaly), 40 episodes per search. Loud\n\
         findings are expected — timing faults are *discovered* — but no\n\
         schedule may ever produce silent disagreement.\n"
    );
    println!("| protocol | n | t | strategy | episodes | findings | worst schedule | msgs | silent | cert replay |");
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for row in t13_sched_search(&[16, 64], 40) {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            row.protocol,
            row.n,
            row.t,
            row.strategy,
            row.episodes,
            row.findings,
            row.best_score,
            row.best_messages,
            if row.silent_found {
                "**YES (BUG)**"
            } else {
                "never"
            },
            ok(row.replay_ok),
        );
    }
    println!();
}

fn t12() {
    println!("## T12 — large-n scaling, synchronous vs discrete-event engine\n");
    println!(
        "Chain FD on dealer stores (isolates run scaling from the 3n(n−1)\nkeydist); \
         both engines must agree on every count.\n"
    );
    println!("| n | t | engine | messages | n−1 | comm. rounds | all decided | wall clock |");
    println!("|---|---|---|---|---|---|---|---|");
    for row in t12_large_n(&[64, 256, 1024]) {
        println!(
            "| {} | {} | {} | {} {} | {} | {} | {} | {:.1} ms |",
            row.n,
            row.t,
            row.engine,
            row.messages,
            ok(row.messages == row.formula),
            row.formula,
            row.comm_rounds,
            ok(row.all_decided),
            row.micros as f64 / 1000.0,
        );
    }
    println!();
}

fn t11() {
    println!("## T11 — parallel scenario sweep (default `lafd sweep` matrix)\n");
    println!("| threads | scenarios | ok | total messages | report matches serial |");
    println!("|---|---|---|---|---|");
    for row in t11_sweep(&[1, 2, 4]) {
        println!(
            "| {} | {} | {} | {} | {} |",
            row.threads,
            row.scenarios,
            row.ok,
            row.messages_total,
            if row.matches_serial { "✓" } else { "✗" },
        );
    }
    println!();
}

fn t1() {
    println!("## T1 — key distribution cost (paper §3.1: 3n(n−1) messages, 3 rounds)\n");
    println!("| n | measured messages | 3n(n−1) | comm. rounds |");
    println!("|---|---|---|---|");
    for row in t1_keydist(SIZES) {
        let check = if row.measured == row.formula {
            "✓"
        } else {
            "✗"
        };
        println!(
            "| {} | {} {check} | {} | {} |",
            row.n, row.measured, row.formula, row.comm_rounds
        );
    }
    println!();
}

fn t2() {
    println!("## T2 — FD cost per run (paper §5: O(n) auth vs O(n·t) non-auth)\n");
    println!("| n | t | chain FD (auth) | n−1 | witness relay | (t+2)(n−1) | ratio |");
    println!("|---|---|---|---|---|---|---|");
    for row in t2_fd_cost(SIZES) {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.1}× |",
            row.n,
            row.t,
            row.auth_measured,
            row.auth_formula,
            row.non_auth_measured,
            row.non_auth_formula,
            row.non_auth_measured as f64 / row.auth_measured as f64,
        );
    }
    println!();
}

fn f1() {
    println!("## F1 — amortization of the one-time key distribution\n");
    for (n, t) in [(8usize, 2usize), (16, 5), (32, 10)] {
        let k_max = fd_core::metrics::amortization_crossover(n, t).unwrap() + 10;
        let (points, crossover) = f1_amortization(n, t, k_max);
        println!(
            "n = {n}, t = {t}: measured crossover after **{crossover}** runs \
             (analytic ≈ 3n/(t+1) = {:.1})\n",
            3.0 * n as f64 / (t as f64 + 1.0)
        );
        println!(
            "| runs k | cumulative auth (keydist + k·(n−1)) | cumulative non-auth (k·(t+2)(n−1)) |"
        );
        println!("|---|---|---|");
        for p in points
            .iter()
            .filter(|p| p.k == 1 || p.k % 5 == 0 || p.k == crossover)
        {
            let marker = if p.k == crossover {
                " **← crossover**"
            } else {
                ""
            };
            println!(
                "| {} | {} | {}{marker} |",
                p.k, p.cumulative_auth, p.cumulative_non_auth
            );
        }
        println!();
    }
}

fn t3() {
    println!("## T3 — communication rounds\n");
    println!("| protocol | measured | formula |");
    println!("|---|---|---|");
    for row in t3_rounds(10, 3) {
        println!(
            "| {} | {} | {} |",
            row.protocol, row.measured_rounds, row.formula_rounds
        );
    }
    println!();
}

fn t4() {
    println!("## T4 — property matrix (F1–F3 under every adversary; Theorems 2 & 4)\n");
    println!("| scenario | F1 | F2 | F3 | discovery | silent disagreement |");
    println!("|---|---|---|---|---|---|");

    let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
    let (n, t) = (7usize, 2usize);

    type Scenario = (
        &'static str,
        Box<dyn Fn(u64) -> (Vec<fd_core::Outcome>, bool)>,
    );
    let sch = Arc::clone(&scheme);
    let chain_spec = || RunSpec::new(Protocol::ChainFd, b"v".to_vec());
    let scenarios: Vec<Scenario> = vec![
        (
            "honest run",
            Box::new(move |seed| {
                let c = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed);
                let run = c.run(&chain_spec());
                (run.correct_outcomes(), true)
            }),
        ),
        (
            "silent chain relay",
            Box::new(move |seed| {
                let c = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed);
                let run = c.run(
                    &chain_spec()
                        .with_adversary(AdversarySpec::scripted(AdversaryKind::SilentRelay)),
                );
                (run.correct_outcomes(), true)
            }),
        ),
        (
            "tampering relay",
            Box::new(move |seed| {
                let c = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed);
                let run = c.run(&chain_spec().with_adversary(AdversarySpec::scripted_at(
                    AdversaryKind::TamperBody,
                    vec![NodeId(2)],
                )));
                (run.correct_outcomes(), true)
            }),
        ),
        (
            "partial dissemination by P_t",
            Box::new(move |seed| {
                let c = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed);
                let s = Arc::clone(&c.scheme);
                let ring = c.keyring(NodeId(2));
                let adversary = AdversarySpec::custom(move |id| {
                    (id == NodeId(2)).then(|| {
                        Box::new(ChainFdAdversary::new(
                            NodeId(2),
                            ChainFdParams::new(n, t),
                            Arc::clone(&s),
                            ring.clone(),
                            ChainMisbehavior::PartialDissemination {
                                skip: vec![NodeId(5)],
                            },
                            None,
                        )) as Box<dyn Node>
                    })
                });
                let run = c.run(&chain_spec().with_adversary(adversary));
                (run.correct_outcomes(), true)
            }),
        ),
        (
            "key equivocation + signing (Thm 4)",
            Box::new(move |seed| {
                let c = Cluster::new(n, t, Arc::clone(&sch), seed);
                let s = Arc::clone(&c.scheme);
                let kd = c.run_key_distribution_with(&mut |id| {
                    (id == NodeId(2)).then(|| {
                        Box::new(EquivocatingKeyDist::new(
                            NodeId(2),
                            n,
                            Arc::clone(&s),
                            seed ^ 0xE0,
                            NodeId(4),
                        )) as Box<dyn Node>
                    })
                });
                let reference =
                    EquivocatingKeyDist::new(NodeId(2), n, Arc::clone(&s), seed ^ 0xE0, NodeId(4));
                let sk_a = reference.key_for(NodeId(0)).0.clone();
                let ring = Keyring::generate(s.as_ref(), NodeId(2), c.seed);
                let adversary = AdversarySpec::custom(move |id| {
                    (id == NodeId(2)).then(|| {
                        Box::new(ChainFdAdversary::new(
                            NodeId(2),
                            ChainFdParams::new(n, t),
                            Arc::clone(&s),
                            ring.clone(),
                            ChainMisbehavior::SignWithKey { sk: sk_a.clone() },
                            None,
                        )) as Box<dyn Node>
                    })
                });
                let run = c.run_with_keys(&chain_spec().with_adversary(adversary), Some(&kd));
                (run.correct_outcomes(), true)
            }),
        ),
    ];

    // Benign-fault wrappers around the honest relay automaton.
    let mut wrapped: Vec<Scenario> = Vec::new();
    for (name, kind) in [
        ("omissive relay (30%)", 0u8),
        ("laggard relay (1 round late)", 1u8),
    ] {
        wrapped.push((
            name,
            Box::new(move |seed| {
                let c = Cluster::new(n, t, Arc::new(SchnorrScheme::test_tiny()), seed);
                let kd = c.setup_keydist();
                let scheme = Arc::clone(&c.scheme);
                let store = kd.stores[1]
                    .clone()
                    .unwrap_or_else(|| KeyStore::new(n, NodeId(1)));
                let ring = c.keyring(NodeId(1));
                let adversary = AdversarySpec::custom(move |id| {
                    (id == NodeId(1)).then(|| {
                        let honest = Box::new(ChainFdNode::new(
                            NodeId(1),
                            ChainFdParams::new(n, t),
                            Arc::clone(&scheme),
                            store.clone(),
                            ring.clone(),
                            None,
                        )) as Box<dyn Node>;
                        if kind == 0 {
                            Box::new(OmissiveNode::new(honest, seed, 300)) as Box<dyn Node>
                        } else {
                            Box::new(LaggardNode::new(honest)) as Box<dyn Node>
                        }
                    })
                });
                let run = c.run_with_keys(&chain_spec().with_adversary(adversary), Some(&kd));
                (run.correct_outcomes(), true)
            }),
        ));
    }
    let scenarios: Vec<Scenario> = scenarios.into_iter().chain(wrapped).collect();

    for (name, run_fn) in scenarios {
        let mut f1 = true;
        let mut f2 = true;
        let mut f3 = true;
        let mut any_disc = false;
        let mut silent_disagreement = false;
        for seed in 0..100u64 {
            let (outcomes, sender_correct) = run_fn(seed);
            let report = check_fd(&outcomes, sender_correct.then_some(&b"v"[..]));
            f1 &= report.f1_termination;
            f2 &= report.f2_agreement;
            f3 &= report.f3_validity;
            any_disc |= report.any_discovery;
            silent_disagreement |= !report.f2_agreement;
        }
        println!(
            "| {name} | {} | {} | {} | {} | {} |",
            ok(f1),
            ok(f2),
            ok(f3),
            if any_disc { "yes" } else { "no (fault-free)" },
            if silent_disagreement {
                "**YES (BUG)**"
            } else {
                "never"
            },
        );
    }
    println!("\n(100 seeds per scenario.)\n");
}

fn ok(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}

fn f2() {
    println!("## F2 — signature scheme cost (paper cites DSA/RSA for S1–S3)\n");
    println!("| scheme | keygen | sign | verify |");
    println!("|---|---|---|---|");
    let schemes: Vec<Box<dyn SignatureScheme>> = vec![
        Box::new(SchnorrScheme::test_tiny()),
        Box::new(SchnorrScheme::s512()),
        Box::new(SchnorrScheme::s1024()),
        Box::new(fd_crypto::DsaScheme::s512()),
        Box::new(fd_crypto::DsaScheme::s1024()),
        Box::new(RsaScheme::new(512)),
        Box::new(RsaScheme::new(1024)),
    ];
    for s in schemes {
        let start = Instant::now();
        let (sk, pk) = s.keypair_from_seed(1);
        let keygen = start.elapsed();
        let start = Instant::now();
        let iterations = 20;
        let mut sig = s.sign(&sk, b"bench").unwrap();
        for _ in 1..iterations {
            sig = s.sign(&sk, b"bench").unwrap();
        }
        let sign = start.elapsed() / iterations;
        let start = Instant::now();
        for _ in 0..iterations {
            assert!(s.verify(&pk, b"bench", &sig));
        }
        let verify = start.elapsed() / iterations;
        println!(
            "| {} | {keygen:.2?} | {sign:.2?} | {verify:.2?} |",
            s.name()
        );
    }
    println!(
        "\n(Criterion benches `crypto.rs` give rigorous statistics; this is the quick view.)\n"
    );
}

fn f3() {
    use fd_core::fd::{ChainFdNode, ChainFdParams};
    use fd_core::keys::{KeyStore, Keyring};
    use fd_core::localauth::{KeyDistNode, KEYDIST_ROUNDS};
    use fd_simnet::transport::{TcpCluster, ThreadCluster};
    use fd_simnet::SyncNetwork;

    println!("## F3 — wall-clock per FD cycle across transports (single shot)\n");
    println!("| n | simulator | threads | tcp |");
    println!("|---|---|---|---|");
    let scheme: Arc<dyn SignatureScheme> = Arc::new(SchnorrScheme::test_tiny());
    for n in [4usize, 8, 12] {
        let t = (n - 1) / 3;
        let mk_kd = |scheme: &Arc<dyn SignatureScheme>| -> Vec<Box<dyn Node>> {
            (0..n)
                .map(|i| {
                    let me = NodeId(i as u16);
                    let ring = Keyring::generate(scheme.as_ref(), me, 7);
                    Box::new(KeyDistNode::new(me, n, Arc::clone(scheme), ring, 7)) as Box<dyn Node>
                })
                .collect()
        };
        let stores: Vec<KeyStore> = {
            let mut net = SyncNetwork::new(mk_kd(&scheme));
            net.run_until_done(KEYDIST_ROUNDS);
            net.into_nodes()
                .into_iter()
                .map(|b| {
                    b.into_any()
                        .downcast::<KeyDistNode>()
                        .expect("KeyDistNode")
                        .into_parts()
                        .0
                })
                .collect()
        };
        let mk_fd = || -> Vec<Box<dyn Node>> {
            (0..n)
                .map(|i| {
                    let me = NodeId(i as u16);
                    Box::new(ChainFdNode::new(
                        me,
                        ChainFdParams::new(n, t),
                        Arc::clone(&scheme),
                        stores[i].clone(),
                        Keyring::generate(scheme.as_ref(), me, 7),
                        (i == 0).then(|| b"v".to_vec()),
                    )) as Box<dyn Node>
                })
                .collect()
        };
        let rounds = ChainFdParams::new(n, t).rounds();
        let sim = {
            let start = Instant::now();
            let mut net = SyncNetwork::new(mk_fd());
            net.run_until_done(rounds);
            start.elapsed()
        };
        let thr = {
            let start = Instant::now();
            let _ = ThreadCluster::new(rounds).run(mk_fd());
            start.elapsed()
        };
        let tcp = {
            let start = Instant::now();
            let _ = TcpCluster::new(rounds).run(mk_fd());
            start.elapsed()
        };
        println!("| {n} | {sim:.2?} | {thr:.2?} | {tcp:.2?} |");
    }
    println!("\n(Criterion benches `transport.rs` give rigorous statistics; counts are identical on all three transports.)\n");
}

fn t5() {
    println!("## T5 — small-value-range optimization (paper §5)\n");
    let (n, t) = (8usize, 2usize);
    println!("100-run workloads, n = {n}, t = {t}, default value `0`:\n");
    println!("| % default runs | small-range total msgs | chain-FD total msgs | winner |");
    println!("|---|---|---|---|");
    for row in t5_small_range(n, t) {
        let winner = if row.small_range_total < row.chain_fd_total {
            "small-range"
        } else {
            "chain FD"
        };
        println!(
            "| {}% | {} | {} | {} |",
            row.default_pct, row.small_range_total, row.chain_fd_total, winner
        );
    }
    println!();
}

fn t6() {
    println!("## T6 — BA extension cost in failure-free runs (paper §4)\n");
    println!("| n | t | FD→BA | chain FD | Dolev–Strong | BA at FD cost? |");
    println!("|---|---|---|---|---|---|");
    for row in t6_ba_cost(&[4, 7, 10, 13, 16]) {
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            row.n,
            row.t,
            row.fd_to_ba,
            row.chain_fd,
            row.dolev_strong,
            ok(row.fd_to_ba == row.chain_fd)
        );
    }
    println!();
}

fn t7() {
    println!("## T7 — agreement-protocol lineup (failure-free cost; paper §7 extensions)\n");
    let (n, t) = (13usize, 3usize);
    println!("n = {n}, t = {t}:\n");
    println!("| protocol | auth | resilience | guarantee | messages | comm. rounds |");
    println!("|---|---|---|---|---|---|");
    for row in t7_agreement_costs(n, t) {
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            row.protocol,
            if row.authenticated { "local" } else { "none" },
            row.resilience,
            row.guarantee,
            row.messages,
            row.comm_rounds
        );
    }
    println!();
}

fn t8() {
    println!("## T8 — fault-class hierarchy (crash ⊂ omission ⊂ timing ⊂ byzantine)\n");
    let (n, t, seeds) = (7usize, 2usize, 100u64);
    println!("Chain FD, n = {n}, t = {t}, faulty first relay, {seeds} seeds per class:\n");
    println!("| fault class | discovered | clean decide | silent disagreement |");
    println!("|---|---|---|---|");
    for row in t8_fault_classes(n, t, seeds) {
        println!(
            "| {} | {}/{} | {}/{} | {} |",
            row.fault_class,
            row.runs_discovered,
            row.runs,
            row.runs_all_decided,
            row.runs,
            if row.silent_disagreements == 0 {
                "never".to_string()
            } else {
                format!("**{} (BUG)**", row.silent_disagreements)
            }
        );
    }
    println!();
}

fn t9() {
    println!("## T9 — N1 assumption ablation (injected link faults)\n");
    let (n, t, seeds) = (7usize, 2usize, 100u64);
    println!("Chain FD, n = {n}, t = {t}, {seeds} seeds per kind; random (round, link) targets:\n");
    println!("| injected fault | per run | discovered | indistinguishable | silent disagreement |");
    println!("|---|---|---|---|---|");
    for row in t9_assumption_ablation(n, t, seeds) {
        println!(
            "| {} | {} | {}/{} | {}/{} | {} |",
            row.fault_kind,
            row.faults_per_run,
            row.runs_discovered,
            row.runs,
            row.runs_clean,
            row.runs,
            if row.silent_disagreements == 0 {
                "never".to_string()
            } else {
                format!("**{} (BUG)**", row.silent_disagreements)
            }
        );
    }
    println!("\n(\"Indistinguishable\" = the fault hit a link the protocol never used, or a\nduplicate was absorbed; the run is identical to a failure-free one.)\n");
}

fn t10() {
    println!("## T10 — wire cost across signature schemes (n = 8, t = 2)\n");
    println!("| scheme | pk bytes | sig bytes | keydist wire bytes | chain-FD wire bytes |");
    println!("|---|---|---|---|---|");
    let schemes: Vec<Arc<dyn SignatureScheme>> = vec![
        Arc::new(SchnorrScheme::test_tiny()),
        Arc::new(SchnorrScheme::s512()),
        Arc::new(fd_crypto::DsaScheme::s512()),
        Arc::new(RsaScheme::new(512)),
        Arc::new(RsaScheme::new(1024)),
    ];
    for row in t10_wire_cost(8, 2, schemes) {
        println!(
            "| {} | {} | {} | {} | {} |",
            row.scheme, row.pk_bytes, row.sig_bytes, row.keydist_bytes, row.chain_fd_bytes
        );
    }
    println!();
}

fn f4() {
    println!("## F4 — key-rotation policy (epoch length vs total cost)\n");
    let (n, t, total) = (8usize, 2usize, 30usize);
    let k_star = fd_core::metrics::amortization_crossover(n, t).unwrap();
    println!(
        "n = {n}, t = {t}, workload of {total} agreement rounds; F1 crossover k* = {k_star}:\n"
    );
    println!("| runs/epoch | rotations | total (rotated) | non-auth baseline | winner |");
    println!("|---|---|---|---|---|");
    for row in f4_rotation(n, t, total) {
        println!(
            "| {} | {} | {} | {} | {} |",
            row.runs_per_epoch,
            total / row.runs_per_epoch,
            row.rotated_total,
            row.non_auth_total,
            if row.rotated_total < row.non_auth_total {
                "rotated local auth"
            } else {
                "non-auth baseline"
            }
        );
    }
    println!("\nRotation pays for itself exactly when the epoch outlives the F1\ncrossover — re-keying more often than every k* runs burns the amortization\nthe paper's §6 argument rests on.\n");
}
