//! Service-layer throughput: the paper's amortization argument at the
//! `lafd serve` boundary. A pooled-session service should amortize one
//! keydist across a request stream (warm path ~ the `n − 1`-message run
//! alone), while the no-pool baseline pays `3n(n−1)` keydist messages per
//! request. The wire codec overhead is measured separately so the gap is
//! attributable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_core::service::{FdService, ServiceConfig};
use fd_core::spec::{Protocol, SpecBuilder};
use fd_core::wire;

fn request_line(n: usize, k: u8) -> String {
    wire::request_to_json(
        &SpecBuilder::new(Protocol::ChainFd, n)
            .with_seed(7)
            .with_input(vec![k]),
        Some("bench"),
    )
    .unwrap()
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    for n in [4usize, 7, 10] {
        // Warm pooled path: the session holds the keydist, every request
        // pays only the run itself plus the wire codec.
        let service = FdService::start(ServiceConfig::default());
        let line = request_line(n, 1);
        service.submit_line(&line); // pre-warm the session slot
        group.bench_with_input(BenchmarkId::new("pooled_warm", n), &n, |b, _| {
            b.iter(|| service.submit_line(&line));
        });
        // Cold baseline: a direct one-shot `Cluster::run`, which pays the
        // full `3n(n−1)`-message keydist every time.
        let builder = SpecBuilder::new(Protocol::ChainFd, n)
            .with_seed(7)
            .with_input(vec![1]);
        group.bench_with_input(BenchmarkId::new("oneshot_cold", n), &n, |b, _| {
            b.iter(|| {
                let (cluster, spec) = builder.build().unwrap();
                cluster.run(&spec).stats.messages_total
            });
        });
        service.shutdown();
    }
    group.finish();

    // The wire codec alone (parse request + render report), so the serve
    // numbers above can be decomposed into codec + execution.
    let mut group = c.benchmark_group("wire_codec");
    let line = request_line(7, 1);
    group.bench_function("request_from_json", |b| {
        b.iter(|| wire::request_from_json(&line).unwrap());
    });
    let (cluster, spec) = SpecBuilder::new(Protocol::ChainFd, 7)
        .with_seed(7)
        .with_input(vec![1])
        .build()
        .unwrap();
    let report = cluster.run(&spec);
    let report_json = wire::report_to_json(&report);
    group.bench_function("report_to_json", |b| {
        b.iter(|| wire::report_to_json(&report));
    });
    group.bench_function("report_from_json", |b| {
        b.iter(|| wire::report_from_json(&report_json).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
