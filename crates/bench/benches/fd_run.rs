//! Experiment T2/F1 timing: one FD run, authenticated chain vs
//! non-authenticated witness relay, as n grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::{cluster, default_t};
use fd_core::spec::{Protocol, RunSpec};

fn bench_chain_fd(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_fd_run");
    group.sample_size(20);
    for n in [4usize, 8, 16, 32] {
        let cl = cluster(n, default_t(n), 2);
        let kd = cl.setup_keydist();
        let spec = RunSpec::new(Protocol::ChainFd, b"bench".to_vec());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let run = cl.run_with_keys(&spec, Some(&kd));
                assert_eq!(run.stats.messages_total, n - 1);
                run
            });
        });
    }
    group.finish();
}

fn bench_non_auth_fd(c: &mut Criterion) {
    let mut group = c.benchmark_group("non_auth_fd_run");
    group.sample_size(20);
    for n in [4usize, 8, 16, 32] {
        let cl = cluster(n, default_t(n), 2);
        let spec = RunSpec::new(Protocol::NonAuthFd, b"bench".to_vec());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| cl.run_with_keys(&spec, None));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain_fd, bench_non_auth_fd);
criterion_main!(benches);
