//! Experiments T6/T7 timing: Byzantine Agreement cost — FD→BA extension vs
//! Dolev–Strong vs plain chain FD vs the §7 extensions (degradable
//! agreement, Phase King), failure-free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::{cluster, default_t};

fn bench_ba(c: &mut Criterion) {
    let mut group = c.benchmark_group("ba_failure_free");
    group.sample_size(10);
    for n in [4usize, 7, 10] {
        let t = default_t(n);
        let cl = cluster(n, t, 4);
        let kd = cl.run_key_distribution();
        group.bench_with_input(BenchmarkId::new("fd_to_ba", n), &n, |b, _| {
            b.iter(|| {
                cl.run_fd_to_ba(&kd, b"v".to_vec(), b"d".to_vec())
                    .stats
                    .messages_total
            });
        });
        group.bench_with_input(BenchmarkId::new("dolev_strong", n), &n, |b, _| {
            b.iter(|| {
                cl.run_dolev_strong(&kd, b"v".to_vec(), b"d".to_vec())
                    .stats
                    .messages_total
            });
        });
        group.bench_with_input(BenchmarkId::new("chain_fd", n), &n, |b, _| {
            b.iter(|| cl.run_chain_fd(&kd, b"v".to_vec()).stats.messages_total);
        });
        group.bench_with_input(BenchmarkId::new("degradable", n), &n, |b, _| {
            b.iter(|| {
                cl.run_degradable(&kd, b"v".to_vec(), b"d".to_vec())
                    .0
                    .stats
                    .messages_total
            });
        });
        if n > 4 * t {
            group.bench_with_input(BenchmarkId::new("phase_king", n), &n, |b, _| {
                b.iter(|| {
                    cl.run_phase_king(b"v".to_vec(), b"d".to_vec())
                        .stats
                        .messages_total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ba);
criterion_main!(benches);
