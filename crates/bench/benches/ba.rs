//! Experiments T6/T7 timing: Byzantine Agreement cost — FD→BA extension vs
//! Dolev–Strong vs plain chain FD vs the §7 extensions (degradable
//! agreement, Phase King), failure-free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::{cluster, default_t};
use fd_core::spec::{Protocol, RunSpec};

fn bench_ba(c: &mut Criterion) {
    let mut group = c.benchmark_group("ba_failure_free");
    group.sample_size(10);
    for n in [4usize, 7, 10] {
        let t = default_t(n);
        let cl = cluster(n, t, 4);
        let kd = cl.setup_keydist();
        let spec = |p: Protocol| RunSpec::new(p, b"v".to_vec()).with_default_value(b"d".to_vec());
        let mut lineup = vec![
            ("fd_to_ba", Protocol::FdToBa),
            ("dolev_strong", Protocol::DolevStrong),
            ("chain_fd", Protocol::ChainFd),
            ("degradable", Protocol::Degradable),
        ];
        if n > 4 * t {
            lineup.push(("phase_king", Protocol::PhaseKing));
        }
        for (name, protocol) in lineup {
            let spec = spec(protocol);
            let keys = protocol.needs_keys().then_some(&kd);
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| cl.run_with_keys(&spec, keys).stats.messages_total);
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ba);
criterion_main!(benches);
