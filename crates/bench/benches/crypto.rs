//! Figure F2: signature scheme cost (sign / verify / keygen) across
//! parameter presets — the practical footing of the paper's S1–S3
//! assumption.

use criterion::{criterion_group, criterion_main, Criterion};
use fd_crypto::{DsaScheme, RsaScheme, SchnorrScheme, SignatureScheme};

fn bench_schemes(c: &mut Criterion) {
    let schemes: Vec<Box<dyn SignatureScheme>> = vec![
        Box::new(SchnorrScheme::test_tiny()),
        Box::new(SchnorrScheme::s512()),
        Box::new(SchnorrScheme::s1024()),
        Box::new(DsaScheme::s512()),
        Box::new(DsaScheme::s1024()),
        Box::new(RsaScheme::new(512)),
    ];
    for scheme in &schemes {
        let (sk, pk) = scheme.keypair_from_seed(1);
        let sig = scheme.sign(&sk, b"bench message").unwrap();
        c.bench_function(format!("sign/{}", scheme.name()), |b| {
            b.iter(|| scheme.sign(&sk, b"bench message").unwrap());
        });
        c.bench_function(format!("verify/{}", scheme.name()), |b| {
            b.iter(|| assert!(scheme.verify(&pk, b"bench message", &sig)));
        });
    }
    // Keygen separately (RSA keygen is slow; few samples).
    let mut group = c.benchmark_group("keygen");
    group.sample_size(10);
    for scheme in &schemes {
        let mut seed = 0u64;
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                seed += 1;
                scheme.keypair_from_seed(seed)
            });
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    use fd_crypto::sha256::sha256;
    let data = vec![0xa5u8; 4096];
    c.bench_function("sha256/4KiB", |b| b.iter(|| sha256(&data)));

    use fd_bigint::RandomUbig;
    use fd_bigint::{modpow, SplitMix64, Ubig};
    let mut rng = SplitMix64::new(1);
    let m = {
        let mut m = rng.random_bits(1024);
        if m.is_even() {
            m = &m + &Ubig::one();
        }
        m
    };
    let base = rng.random_below(&m);
    let exp = rng.random_bits(256);
    c.bench_function("modpow/1024bit-mod-256bit-exp", |b| {
        b.iter(|| modpow(&base, &exp, &m))
    });
}

criterion_group!(benches, bench_schemes, bench_primitives);
criterion_main!(benches);
