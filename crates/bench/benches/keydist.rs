//! Experiment T1 timing: key distribution wall-clock vs n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_bench::{cluster, default_t};

fn bench_keydist(c: &mut Criterion) {
    let mut group = c.benchmark_group("keydist");
    group.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cl = cluster(n, default_t(n), 1);
            b.iter(|| {
                let kd = cl.run_key_distribution();
                assert_eq!(kd.stats.messages_total, 3 * n * (n - 1));
                kd
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_keydist);
criterion_main!(benches);
