//! Experiment T11 timing: the parallel scenario sweep at different worker
//! counts (each `Cluster` run is independent, so throughput should scale
//! with cores until the machine runs out of them).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_core::sweep::{run_sweep, SweepMatrix};

fn bench_sweep_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_default_matrix");
    group.sample_size(10);
    let matrix = SweepMatrix::quick();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let report = run_sweep(&matrix, threads);
                    assert!(report.all_ok());
                    report.rows.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_threads);
criterion_main!(benches);
