//! Figure F3: wall-clock for one full (keydist + FD) cycle on the three
//! executors — simulator, thread cluster, TCP cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fd_core::fd::{ChainFdNode, ChainFdParams};
use fd_core::keys::{KeyStore, Keyring};
use fd_core::localauth::{KeyDistNode, KEYDIST_ROUNDS};
use fd_crypto::{SchnorrScheme, SignatureScheme};
use fd_simnet::transport::{TcpCluster, ThreadCluster};
use fd_simnet::{Node, NodeId, SyncNetwork};
use std::sync::Arc;

fn scheme() -> Arc<dyn SignatureScheme> {
    Arc::new(SchnorrScheme::test_tiny())
}

fn keydist_nodes(n: usize) -> Vec<Box<dyn Node>> {
    let sch = scheme();
    (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            let ring = Keyring::generate(sch.as_ref(), me, 9);
            Box::new(KeyDistNode::new(me, n, Arc::clone(&sch), ring, 9)) as Box<dyn Node>
        })
        .collect()
}

fn fd_nodes(n: usize, t: usize, stores: &[KeyStore]) -> Vec<Box<dyn Node>> {
    let sch = scheme();
    (0..n)
        .map(|i| {
            let me = NodeId(i as u16);
            Box::new(ChainFdNode::new(
                me,
                ChainFdParams::new(n, t),
                Arc::clone(&sch),
                stores[i].clone(),
                Keyring::generate(sch.as_ref(), me, 9),
                (i == 0).then(|| b"bench".to_vec()),
            )) as Box<dyn Node>
        })
        .collect()
}

fn stores(n: usize) -> Vec<KeyStore> {
    let mut net = SyncNetwork::new(keydist_nodes(n));
    net.run_until_done(KEYDIST_ROUNDS);
    net.into_nodes()
        .into_iter()
        .map(|b| {
            b.into_any()
                .downcast::<KeyDistNode>()
                .expect("KeyDistNode")
                .into_parts()
                .0
        })
        .collect()
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_cycle_transport");
    group.sample_size(10);
    for n in [4usize, 8] {
        let t = (n - 1) / 3;
        let st = stores(n);
        let rounds = ChainFdParams::new(n, t).rounds();
        group.bench_with_input(BenchmarkId::new("simulator", n), &n, |b, _| {
            b.iter(|| {
                let mut net = SyncNetwork::new(fd_nodes(n, t, &st));
                net.run_until_done(rounds);
                net.stats().messages_total
            });
        });
        group.bench_with_input(BenchmarkId::new("threads", n), &n, |b, _| {
            b.iter(|| {
                ThreadCluster::new(rounds)
                    .run(fd_nodes(n, t, &st))
                    .stats
                    .messages_total
            });
        });
        group.bench_with_input(BenchmarkId::new("tcp", n), &n, |b, _| {
            b.iter(|| {
                TcpCluster::new(rounds)
                    .run(fd_nodes(n, t, &st))
                    .stats
                    .messages_total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
