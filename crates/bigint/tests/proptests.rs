//! Property-based tests for the bigint substrate: ring axioms, division
//! invariants, encoding round-trips, and modular-arithmetic laws.

use fd_bigint::{egcd, gcd, modinv, modmul, modpow, Int, MontCtx, Ubig};
use proptest::prelude::*;

fn ubig_strategy() -> impl Strategy<Value = Ubig> {
    // Byte vectors up to 40 bytes -> integers up to 320 bits, biased to
    // include small and zero values.
    prop::collection::vec(any::<u8>(), 0..40).prop_map(|bytes| Ubig::from_be_bytes(&bytes))
}

fn nonzero_ubig() -> impl Strategy<Value = Ubig> {
    ubig_strategy().prop_map(|v| if v.is_zero() { Ubig::one() } else { v })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutes(a in ubig_strategy(), b in ubig_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in ubig_strategy(), b in ubig_strategy(), c in ubig_strategy()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutes(a in ubig_strategy(), b in ubig_strategy()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associates(a in ubig_strategy(), b in ubig_strategy(), c in ubig_strategy()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn mul_distributes(a in ubig_strategy(), b in ubig_strategy(), c in ubig_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn add_sub_round_trip(a in ubig_strategy(), b in ubig_strategy()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn division_invariant(u in ubig_strategy(), v in nonzero_ubig()) {
        let (q, r) = u.div_rem(&v);
        prop_assert!(r < v);
        prop_assert_eq!(&(&q * &v) + &r, u);
    }

    #[test]
    fn shift_is_pow2_mul(a in ubig_strategy(), s in 0usize..200) {
        prop_assert_eq!(&a << s, &a * &Ubig::pow2(s));
    }

    #[test]
    fn shl_shr_round_trip(a in ubig_strategy(), s in 0usize..200) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn be_bytes_round_trip(a in ubig_strategy()) {
        prop_assert_eq!(Ubig::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn decimal_round_trip(a in ubig_strategy()) {
        prop_assert_eq!(a.to_string().parse::<Ubig>().unwrap(), a);
    }

    #[test]
    fn hex_round_trip(a in ubig_strategy()) {
        prop_assert_eq!(Ubig::from_hex(&format!("{a:x}")).unwrap(), a);
    }

    #[test]
    fn gcd_divides_both(a in ubig_strategy(), b in ubig_strategy()) {
        let g = gcd(&a, &b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn egcd_bezout(a in ubig_strategy(), b in ubig_strategy()) {
        let (g, x, y) = egcd(&a, &b);
        let lhs = &(&Int::from(a) * &x) + &(&Int::from(b) * &y);
        prop_assert_eq!(lhs, Int::from(g));
    }

    #[test]
    fn modinv_is_inverse(a in nonzero_ubig(), m in nonzero_ubig()) {
        if m > Ubig::one() {
            if let Some(inv) = modinv(&a, &m) {
                prop_assert_eq!(modmul(&a, &inv, &m), &Ubig::one() % &m);
                prop_assert!(inv < m);
            } else {
                prop_assert!(!gcd(&a, &m).is_one());
            }
        }
    }

    #[test]
    fn montgomery_matches_division(a in ubig_strategy(), b in ubig_strategy(), m in nonzero_ubig()) {
        if m.is_odd() && !m.is_one() {
            let ctx = MontCtx::new(&m).unwrap();
            prop_assert_eq!(ctx.mul(&a, &b), &(&a * &b) % &m);
        }
    }

    #[test]
    fn modpow_product_law(base in ubig_strategy(), e1 in 0u64..200, e2 in 0u64..200, m in nonzero_ubig()) {
        // base^(e1+e2) = base^e1 * base^e2 (mod m)
        if m > Ubig::one() {
            let lhs = modpow(&base, &Ubig::from(e1 + e2), &m);
            let rhs = modmul(
                &modpow(&base, &Ubig::from(e1), &m),
                &modpow(&base, &Ubig::from(e2), &m),
                &m,
            );
            prop_assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn cmp_consistent_with_sub(a in ubig_strategy(), b in ubig_strategy()) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }
}
