//! Minimal signed big integer, just enough for the extended Euclidean
//! algorithm (Bézout coefficients go negative).

use crate::Ubig;
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};

/// Sign of an [`Int`]. Zero is canonically [`Sign::Plus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// A signed arbitrary-precision integer (sign + magnitude).
///
/// Deliberately minimal: the public surface of this crate is unsigned
/// ([`Ubig`]); `Int` exists so that [`crate::egcd`] can track Bézout
/// coefficients. Zero always has [`Sign::Plus`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Int {
    sign: Sign,
    mag: Ubig,
}

impl Int {
    /// Zero.
    pub fn zero() -> Self {
        Int {
            sign: Sign::Plus,
            mag: Ubig::zero(),
        }
    }

    /// One.
    pub fn one() -> Self {
        Int {
            sign: Sign::Plus,
            mag: Ubig::one(),
        }
    }

    /// Construct from a sign and magnitude (sign of zero is normalized).
    pub fn new(sign: Sign, mag: Ubig) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &Ubig {
        &self.mag
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// The canonical residue in `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_euclid(&self, m: &Ubig) -> Ubig {
        let r = &self.mag % m;
        match self.sign {
            Sign::Plus => r,
            Sign::Minus => {
                if r.is_zero() {
                    r
                } else {
                    m - &r
                }
            }
        }
    }
}

impl From<Ubig> for Int {
    fn from(mag: Ubig) -> Self {
        Int::new(Sign::Plus, mag)
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        if v < 0 {
            Int::new(Sign::Minus, Ubig::from(v.unsigned_abs()))
        } else {
            Int::new(Sign::Plus, Ubig::from(v as u64))
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        if self.is_zero() {
            self
        } else {
            Int::new(
                match self.sign {
                    Sign::Plus => Sign::Minus,
                    Sign::Minus => Sign::Plus,
                },
                self.mag,
            )
        }
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if self.sign == rhs.sign {
            return Int::new(self.sign, &self.mag + &rhs.mag);
        }
        match self.mag.cmp(&rhs.mag) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::new(self.sign, &self.mag - &rhs.mag),
            Ordering::Less => Int::new(rhs.sign, &rhs.mag - &self.mag),
        }
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self + &(-rhs.clone())
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Int::new(sign, &self.mag * &rhs.mag)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Sign::Plus => write!(f, "Int({})", self.mag),
            Sign::Minus => write!(f, "Int(-{})", self.mag),
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Sign::Plus => write!(f, "{}", self.mag),
            Sign::Minus => write!(f, "-{}", self.mag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn zero_is_plus() {
        assert_eq!(i(-5).sign(), Sign::Minus);
        assert_eq!((&i(-5) + &i(5)).sign(), Sign::Plus);
        assert!((-Int::zero()).is_zero());
        assert_eq!(Int::zero().sign(), Sign::Plus);
    }

    #[test]
    fn signed_add_sub() {
        assert_eq!(&i(3) + &i(-7), i(-4));
        assert_eq!(&i(-3) + &i(7), i(4));
        assert_eq!(&i(-3) - &i(7), i(-10));
        assert_eq!(&i(3) - &i(-7), i(10));
    }

    #[test]
    fn signed_mul() {
        assert_eq!(&i(-3) * &i(7), i(-21));
        assert_eq!(&i(-3) * &i(-7), i(21));
        assert!((&i(0) * &i(-7)).is_zero());
    }

    #[test]
    fn rem_euclid_canonical() {
        let m = Ubig::from(10u64);
        assert_eq!(i(-3).rem_euclid(&m), Ubig::from(7u64));
        assert_eq!(i(13).rem_euclid(&m), Ubig::from(3u64));
        assert_eq!(i(-20).rem_euclid(&m), Ubig::zero());
    }

    #[test]
    fn display() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(format!("{:?}", i(42)), "Int(42)");
    }
}
