//! Primality testing and prime generation.
//!
//! Used by `fd-crypto` to generate Schnorr groups (DSA-style `p = c·q + 1`)
//! and RSA moduli at runtime from fixed seeds, so the repository needs no
//! hard-coded group constants while staying fully deterministic.

use crate::{modpow, RandomUbig, Ubig};

/// Small primes for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// False-positive probability is at most `4^-rounds`; 40 rounds is standard
/// for cryptographic use. Deterministically correct for all `n < 282`
/// (covered by trial division).
pub fn is_probable_prime<R: RandomUbig>(n: &Ubig, rounds: usize, rng: &mut R) -> bool {
    if n < &Ubig::from(2u64) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = Ubig::from(p);
        if *n == p {
            return true;
        }
        if (n % &p).is_zero() {
            return false;
        }
    }
    // n is odd and > 281 here. Write n-1 = d * 2^s.
    let one = Ubig::one();
    let n_minus_1 = n - &one;
    let s = {
        let mut s = 0usize;
        while !n_minus_1.bit(s) {
            s += 1;
        }
        s
    };
    let d = &n_minus_1 >> s;
    let two = Ubig::from(2u64);
    let n_minus_2 = n - &two;

    'witness: for _ in 0..rounds {
        let a = rng.random_range(&two, &n_minus_2);
        let mut x = modpow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = modpow(&x, &two, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
///
/// The candidate stream is derived from `rng`, so generation is fully
/// deterministic per seed.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: RandomUbig>(bits: usize, rng: &mut R) -> Ubig {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    if bits < 9 {
        // Sample directly from the small-prime table region.
        loop {
            let c = rng.random_bits(bits);
            if is_probable_prime(&c, 40, rng) {
                return c;
            }
        }
    }
    loop {
        let mut c = rng.random_bits(bits);
        if c.is_even() {
            c = &c + &Ubig::one();
            if c.bits() != bits {
                continue;
            }
        }
        if is_probable_prime(&c, 40, rng) {
            return c;
        }
    }
}

/// Generate a DSA-style prime pair: `q` prime with `q_bits` bits and
/// `p = c·q + 1` prime with `p_bits` bits.
///
/// Returns `(p, q)`. This is the classic Schnorr-group parameter shape: the
/// multiplicative group mod `p` has a subgroup of prime order `q`.
///
/// # Panics
///
/// Panics if `p_bits <= q_bits + 1` (no room for the cofactor).
pub fn gen_schnorr_pair<R: RandomUbig>(p_bits: usize, q_bits: usize, rng: &mut R) -> (Ubig, Ubig) {
    assert!(
        p_bits > q_bits + 1,
        "p must be strictly larger than q (cofactor >= 2)"
    );
    let q = gen_prime(q_bits, rng);
    let one = Ubig::one();
    loop {
        // c even with exactly p_bits - q_bits bits, so p = c*q + 1 is odd
        // and has roughly p_bits bits.
        let mut c = rng.random_bits(p_bits - q_bits);
        if c.is_odd() {
            c = &c + &one;
        }
        if c.is_zero() {
            continue;
        }
        let p = &(&c * &q) + &one;
        if p.bits() != p_bits {
            continue;
        }
        if is_probable_prime(&p, 40, rng) {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn small_primes_and_composites() {
        let mut rng = SplitMix64::new(1);
        for p in [2u64, 3, 5, 7, 97, 101, 257, 281] {
            assert!(is_probable_prime(&Ubig::from(p), 20, &mut rng), "{p}");
        }
        for c in [0u64, 1, 4, 9, 100, 255, 961, 1001] {
            assert!(!is_probable_prime(&Ubig::from(c), 20, &mut rng), "{c}");
        }
    }

    #[test]
    fn known_large_prime_and_carmichael() {
        let mut rng = SplitMix64::new(2);
        // 2^61 - 1 is a Mersenne prime.
        let m61 = &Ubig::pow2(61) - &Ubig::one();
        assert!(is_probable_prime(&m61, 30, &mut rng));
        // 561 = 3*11*17 is the smallest Carmichael number (Fermat liar trap).
        assert!(!is_probable_prime(&Ubig::from(561u64), 30, &mut rng));
        // Large Carmichael: 101101 = 7*11*13*101
        assert!(!is_probable_prime(&Ubig::from(101101u64), 30, &mut rng));
    }

    #[test]
    fn gen_prime_has_requested_width() {
        let mut rng = SplitMix64::new(3);
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, 20, &mut rng));
        }
    }

    #[test]
    fn gen_prime_deterministic() {
        let a = gen_prime(64, &mut SplitMix64::new(42));
        let b = gen_prime(64, &mut SplitMix64::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn schnorr_pair_structure() {
        let mut rng = SplitMix64::new(4);
        let (p, q) = gen_schnorr_pair(128, 64, &mut rng);
        assert_eq!(p.bits(), 128);
        assert_eq!(q.bits(), 64);
        // q divides p - 1
        let p_minus_1 = &p - &Ubig::one();
        assert!((&p_minus_1 % &q).is_zero());
        assert!(is_probable_prime(&p, 20, &mut rng));
        assert!(is_probable_prime(&q, 20, &mut rng));
    }

    #[test]
    #[should_panic(expected = "at least 2 bits")]
    fn gen_prime_rejects_tiny_width() {
        let _ = gen_prime(1, &mut SplitMix64::new(0));
    }
}
