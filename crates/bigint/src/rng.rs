//! Deterministic randomness for reproducible experiments.
//!
//! The whole reproduction is seed-driven (DESIGN.md §5.5): every table row
//! must be regenerable bit-for-bit. This module provides a tiny, well-known
//! PRNG (SplitMix64) plus helpers to sample big integers, keeping `fd-bigint`
//! dependency-free. Cryptographic key generation in `fd-crypto` layers a
//! ChaCha20-based DRBG on top; SplitMix64 here is for primality-test bases
//! and test data, where statistical quality suffices.

use crate::Ubig;

/// SplitMix64 PRNG (Steele, Lea & Flood 2014). Deterministic, tiny, and good
/// enough for Miller–Rabin bases and simulation decisions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed. Every distinct seed yields an independent stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Derive an independent sub-stream (for per-node/per-run seeding).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

/// Sampling helpers for [`Ubig`] over any `u64` entropy source.
pub trait RandomUbig {
    /// Next 64 uniform bits.
    fn gen_u64(&mut self) -> u64;

    /// Uniform integer with exactly `bits` bits (top bit set), or zero when
    /// `bits == 0`.
    fn random_bits(&mut self, bits: usize) -> Ubig
    where
        Self: Sized,
    {
        if bits == 0 {
            return Ubig::zero();
        }
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| self.gen_u64()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        if top_bits < 64 {
            v[limbs - 1] &= (1u64 << top_bits) - 1;
        }
        let mut out = Ubig::from_limbs(v);
        out.set_bit(bits - 1);
        out
    }

    /// Uniform integer in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn random_below(&mut self, bound: &Ubig) -> Ubig
    where
        Self: Sized,
    {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bits();
        let limbs = bits.div_ceil(64);
        let top_bits = bits - (limbs - 1) * 64;
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| self.gen_u64()).collect();
            if top_bits < 64 {
                v[limbs - 1] &= (1u64 << top_bits) - 1;
            }
            let candidate = Ubig::from_limbs(v);
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn random_range(&mut self, lo: &Ubig, hi: &Ubig) -> Ubig
    where
        Self: Sized,
    {
        assert!(lo < hi, "empty range");
        let width = hi - lo;
        lo + &self.random_below(&width)
    }
}

impl RandomUbig for SplitMix64 {
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference stream for seed 0 (from the public-domain reference impl).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(99);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(99);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut r = SplitMix64::new(1);
        for bits in [1usize, 8, 63, 64, 65, 200] {
            let v = r.random_bits(bits);
            assert_eq!(v.bits(), bits, "width {bits}");
        }
        assert!(r.random_bits(0).is_zero());
    }

    #[test]
    fn random_below_in_range() {
        let mut r = SplitMix64::new(2);
        let bound = Ubig::from(1000u64);
        for _ in 0..100 {
            assert!(r.random_below(&bound) < bound);
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut r = SplitMix64::new(3);
        let lo = Ubig::from(10u64);
        let hi = Ubig::from(14u64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = r.random_range(&lo, &hi);
            assert!(v >= lo && v < hi);
            seen.insert(v.to_u64().unwrap());
        }
        assert_eq!(seen.len(), 4); // all of 10..14 eventually hit
    }

    #[test]
    fn next_below_unbiased_domain() {
        let mut r = SplitMix64::new(4);
        for _ in 0..100 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut r = SplitMix64::new(5);
        let mut f1 = r.fork();
        let mut f2 = r.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
