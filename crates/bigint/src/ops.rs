//! Operator implementations for [`Ubig`].
//!
//! Binary operators are implemented on references (the idiomatic choice for
//! heap-backed integers) with owned-value conveniences delegating to them.

use crate::ll;
use crate::Ubig;
use core::ops::{Add, AddAssign, BitAnd, Div, Mul, Rem, Shl, Shr, Sub, SubAssign};

impl Add for &Ubig {
    type Output = Ubig;
    fn add(self, rhs: &Ubig) -> Ubig {
        let mut out = self.limbs.clone();
        ll::add_assign(&mut out, &rhs.limbs);
        Ubig::from_limbs(out)
    }
}

impl Sub for &Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics on underflow; use [`Ubig::checked_sub`] to handle that case.
    fn sub(self, rhs: &Ubig) -> Ubig {
        self.checked_sub(rhs)
            .expect("Ubig subtraction underflow; use checked_sub")
    }
}

impl Mul for &Ubig {
    type Output = Ubig;
    fn mul(self, rhs: &Ubig) -> Ubig {
        Ubig::from_limbs(ll::mul(&self.limbs, &rhs.limbs))
    }
}

impl Div for &Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &Ubig) -> Ubig {
        self.div_rem(rhs).0
    }
}

impl Rem for &Ubig {
    type Output = Ubig;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &Ubig) -> Ubig {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &Ubig {
    type Output = Ubig;
    fn shl(self, s: usize) -> Ubig {
        Ubig::from_limbs(ll::shl(&self.limbs, s))
    }
}

impl Shr<usize> for &Ubig {
    type Output = Ubig;
    fn shr(self, s: usize) -> Ubig {
        Ubig::from_limbs(ll::shr(&self.limbs, s))
    }
}

impl BitAnd for &Ubig {
    type Output = Ubig;
    fn bitand(self, rhs: &Ubig) -> Ubig {
        let n = self.limbs.len().min(rhs.limbs.len());
        let limbs = (0..n).map(|i| self.limbs[i] & rhs.limbs[i]).collect();
        Ubig::from_limbs(limbs)
    }
}

impl AddAssign<&Ubig> for Ubig {
    fn add_assign(&mut self, rhs: &Ubig) {
        ll::add_assign(&mut self.limbs, &rhs.limbs);
    }
}

impl SubAssign<&Ubig> for Ubig {
    /// # Panics
    ///
    /// Panics on underflow.
    fn sub_assign(&mut self, rhs: &Ubig) {
        *self = &*self - rhs;
    }
}

macro_rules! owned_delegate {
    ($($trait:ident :: $method:ident),*) => {$(
        impl $trait for Ubig {
            type Output = Ubig;
            fn $method(self, rhs: Ubig) -> Ubig {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Ubig> for Ubig {
            type Output = Ubig;
            fn $method(self, rhs: &Ubig) -> Ubig {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Ubig> for &Ubig {
            type Output = Ubig;
            fn $method(self, rhs: Ubig) -> Ubig {
                $trait::$method(self, &rhs)
            }
        }
    )*};
}

owned_delegate!(
    Add::add,
    Sub::sub,
    Mul::mul,
    Div::div,
    Rem::rem,
    BitAnd::bitand
);

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u128) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn add_sub_round_trip() {
        let a = u(u128::MAX - 3);
        let b = u(12345);
        assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_div_rem_identity() {
        let a = u(0xdead_beef_1234_5678_9abc_def0);
        let d = u(0xffff_1234);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
        assert_eq!(&a / &d, q);
        assert_eq!(&a % &d, r);
    }

    #[test]
    fn shifts() {
        let a = u(0b1011);
        assert_eq!(&a << 2, u(0b101100));
        assert_eq!(&a >> 1, u(0b101));
        assert_eq!(&a >> 10, Ubig::zero());
    }

    #[test]
    fn bitand_truncates() {
        let a = Ubig::pow2(100);
        let b = u(u128::MAX);
        assert_eq!(&a & &b, Ubig::pow2(100)); // bit 100 set in both
        assert_eq!(&Ubig::pow2(200) & &b, Ubig::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = u(1) - u(2);
    }

    #[test]
    fn owned_variants() {
        assert_eq!(u(2) + u(3), u(5));
        assert_eq!(&u(7) * u(6), u(42));
        assert_eq!(u(7) % &u(4), u(3));
    }
}
