//! # fd-bigint
//!
//! From-scratch arbitrary-precision integer arithmetic used as the numeric
//! substrate for the signature schemes in the
//! [Borcherding 1995](https://doi.org/10.1109/ICDCS.1995.500023) reproduction.
//!
//! The paper assumes a signature scheme with properties S1–S3 (its §2)
//! and cites DSA and RSA as instantiations; both need multi-precision
//! modular arithmetic. This crate provides exactly that, with no external
//! dependencies — everything above it (the Fig. 1 key distribution's
//! challenge signatures, the §4 chain signatures, the test predicates
//! exchanged as public keys) ultimately reduces to these primitives:
//!
//! * [`Ubig`] — dynamically sized unsigned integers (64-bit limbs,
//!   little-endian, always normalized).
//! * [`Int`] — thin signed wrapper used by the extended Euclidean algorithm.
//! * [`MontCtx`] — Montgomery multiplication context for fast `modpow`
//!   with odd moduli (the common case for prime fields and RSA moduli).
//! * [`prime`] — Miller–Rabin primality testing and prime generation.
//! * [`SplitMix64`] — a tiny deterministic PRNG so the crate stays
//!   dependency-free while still supporting seeded, reproducible key and
//!   group generation.
//!
//! ## Example
//!
//! ```
//! use fd_bigint::{Ubig, modpow};
//!
//! let p = Ubig::from(101u64);
//! let g = Ubig::from(2u64);
//! // Fermat: g^(p-1) = 1 (mod p)
//! let e = &p - &Ubig::one();
//! assert_eq!(modpow(&g, &e, &p), Ubig::one());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fmt;
mod gcd;
mod int;
mod ll;
mod modular;
mod montgomery;
mod ops;
pub mod prime;
mod rng;
mod ubig;

pub use gcd::{egcd, gcd, modinv};
pub use int::{Int, Sign};
pub use modular::{modadd, modmul, modpow, modsub};
pub use montgomery::MontCtx;
pub use rng::{RandomUbig, SplitMix64};
pub use ubig::{ParseUbigError, Ubig};
