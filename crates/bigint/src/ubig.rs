//! The [`Ubig`] arbitrary-precision unsigned integer.

use crate::ll;
use core::cmp::Ordering;
use core::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with the invariant that the most
/// significant limb is non-zero (zero is the empty limb vector). All
/// arithmetic is implemented from scratch in this crate; see the crate docs
/// for why.
///
/// ```
/// use fd_bigint::Ubig;
/// let a = Ubig::from(10u64);
/// let b = Ubig::from(4u64);
/// assert_eq!(&a * &b, Ubig::from(40u64));
/// assert_eq!(&a % &b, Ubig::from(2u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    pub(crate) limbs: Vec<u64>,
}

impl Ubig {
    /// The value `0`.
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// `2^k`.
    pub fn pow2(k: usize) -> Self {
        let mut limbs = vec![0u64; k / 64 + 1];
        limbs[k / 64] = 1u64 << (k % 64);
        Self::from_limbs(limbs)
    }

    /// Construct from little-endian limbs, normalizing.
    pub(crate) fn from_limbs(mut limbs: Vec<u64>) -> Self {
        let n = ll::nlimbs(&limbs);
        limbs.truncate(n);
        Ubig { limbs }
    }

    /// Borrow the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Bit length: position of the highest set bit + 1 (0 for zero).
    pub fn bits(&self) -> usize {
        ll::bits(&self.limbs)
    }

    /// Value of bit `i` (LSB is bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        limb < self.limbs.len() && (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to 1, growing as needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << (i % 64);
    }

    /// Subtraction that returns `None` on underflow.
    pub fn checked_sub(&self, rhs: &Ubig) -> Option<Ubig> {
        if ll::cmp(&self.limbs, &rhs.limbs) == Ordering::Less {
            return None;
        }
        let mut out = self.limbs.clone();
        let borrow = ll::sub_assign(&mut out, &rhs.limbs);
        debug_assert!(!borrow);
        Some(Ubig::from_limbs(out))
    }

    /// Quotient and remainder in one division.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &Ubig) -> (Ubig, Ubig) {
        let (q, r) = ll::div_rem(&self.limbs, &d.limbs);
        (Ubig::from_limbs(q), Ubig::from_limbs(r))
    }

    /// Interpret as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Interpret as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Big-endian bytes without leading zeros (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Big-endian bytes padded (or truncated from the left) to exactly `len`
    /// bytes. Returns `None` if the value does not fit in `len` bytes.
    pub fn to_be_bytes_fixed(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_be_bytes();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Construct from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Ubig::from_limbs(limbs)
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        Ubig::from_limbs(vec![v])
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from(v as u64)
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        ll::cmp(&self.limbs, &other.limbs)
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ubig(0x{:x})", self)
    }
}

/// Error returned when parsing a [`Ubig`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUbigError {
    pub(crate) reason: &'static str,
}

impl fmt::Display for ParseUbigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer literal: {}", self.reason)
    }
}

impl std::error::Error for ParseUbigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty_and_even() {
        let z = Ubig::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert_eq!(z.bits(), 0);
        assert_eq!(z, Ubig::default());
    }

    #[test]
    fn pow2_bits() {
        for k in [0usize, 1, 63, 64, 65, 200] {
            let p = Ubig::pow2(k);
            assert_eq!(p.bits(), k + 1);
            assert!(p.bit(k));
            assert!(!p.bit(k + 1));
        }
    }

    #[test]
    fn set_bit_grows() {
        let mut v = Ubig::zero();
        v.set_bit(130);
        assert_eq!(v, Ubig::pow2(130));
    }

    #[test]
    fn checked_sub_underflow() {
        let a = Ubig::from(3u64);
        let b = Ubig::from(5u64);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(Ubig::from(2u64)));
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = Ubig::from(0x0102_0304_0506_0708_090a_u128);
        let bytes = v.to_be_bytes();
        assert_eq!(bytes[0], 0x01); // no leading zeros
        assert_eq!(Ubig::from_be_bytes(&bytes), v);
    }

    #[test]
    fn be_bytes_fixed_pads_and_rejects() {
        let v = Ubig::from(0xabcdu64);
        assert_eq!(v.to_be_bytes_fixed(4), Some(vec![0, 0, 0xab, 0xcd]));
        assert_eq!(v.to_be_bytes_fixed(1), None);
        assert_eq!(Ubig::zero().to_be_bytes_fixed(3), Some(vec![0, 0, 0]));
    }

    #[test]
    fn u128_round_trip() {
        let v = u128::MAX - 12345;
        assert_eq!(Ubig::from(v).to_u128(), Some(v));
        assert_eq!(Ubig::from(7u64).to_u64(), Some(7));
        assert!(Ubig::pow2(128).to_u128().is_none());
    }
}
