//! Free-function modular arithmetic helpers.

use crate::{MontCtx, Ubig};

/// `(a + b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modadd(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    &(a + b) % m
}

/// `(a - b) mod m`, wrapping into the canonical residue.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modsub(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    let a = a % m;
    let b = &(b % m);
    if a >= *b {
        &a - b
    } else {
        &(&a + m) - b
    }
}

/// `(a * b) mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modmul(a: &Ubig, b: &Ubig, m: &Ubig) -> Ubig {
    &(a * b) % m
}

/// `base^exp mod m`.
///
/// Uses Montgomery exponentiation when `m` is odd (the common case for the
/// prime moduli in `fd-crypto`), and falls back to square-and-multiply with
/// division-based reduction for even moduli.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn modpow(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    assert!(!m.is_zero(), "modpow modulus must be non-zero");
    if m.is_one() {
        return Ubig::zero();
    }
    if let Some(ctx) = MontCtx::new(m) {
        return ctx.modpow(base, exp);
    }
    // Even modulus fallback.
    let mut acc = Ubig::one();
    let base = base % m;
    for i in (0..exp.bits()).rev() {
        acc = &(&acc * &acc) % m;
        if exp.bit(i) {
            acc = &(&acc * &base) % m;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(modadd(&u(7), &u(8), &u(10)), u(5));
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(modsub(&u(3), &u(8), &u(10)), u(5));
        assert_eq!(modsub(&u(8), &u(3), &u(10)), u(5));
        // operands larger than m
        assert_eq!(modsub(&u(23), &u(108), &u(10)), u(5));
    }

    #[test]
    fn mul_reduces() {
        assert_eq!(modmul(&u(7), &u(8), &u(10)), u(6));
    }

    #[test]
    fn modpow_even_modulus_fallback() {
        // 3^4 = 81 = 1 mod 16
        assert_eq!(modpow(&u(3), &u(4), &u(16)), u(1));
        // 2^10 mod 12 = 1024 mod 12 = 4
        assert_eq!(modpow(&u(2), &u(10), &u(12)), u(4));
    }

    #[test]
    fn modpow_modulus_one_is_zero() {
        assert_eq!(modpow(&u(5), &u(3), &u(1)), Ubig::zero());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn modpow_zero_modulus_panics() {
        let _ = modpow(&u(2), &u(2), &Ubig::zero());
    }
}
