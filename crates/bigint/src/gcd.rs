//! Greatest common divisor, extended Euclid, and modular inverse.

use crate::{Int, Ubig};

/// Greatest common divisor (Euclid). `gcd(0, b) = b`.
pub fn gcd(a: &Ubig, b: &Ubig) -> Ubig {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` such that `a·x + b·y = g = gcd(a, b)`.
pub fn egcd(a: &Ubig, b: &Ubig) -> (Ubig, Int, Int) {
    let mut old_r = a.clone();
    let mut r = b.clone();
    let mut old_s = Int::one();
    let mut s = Int::zero();
    let mut old_t = Int::zero();
    let mut t = Int::one();

    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        let q_int = Int::from(q);
        old_r = core::mem::replace(&mut r, rem);
        let new_s = &old_s - &(&q_int * &s);
        old_s = core::mem::replace(&mut s, new_s);
        let new_t = &old_t - &(&q_int * &t);
        old_t = core::mem::replace(&mut t, new_t);
    }
    (old_r, old_s, old_t)
}

/// Modular inverse: the unique `x` in `[0, m)` with `a·x ≡ 1 (mod m)`.
///
/// Returns `None` when `gcd(a, m) != 1` (no inverse exists) or `m <= 1`.
pub fn modinv(a: &Ubig, m: &Ubig) -> Option<Ubig> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let (g, x, _) = egcd(&(a % m), m);
    if g.is_one() {
        Some(x.rem_euclid(m))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{modmul, RandomUbig, SplitMix64};

    fn u(v: u64) -> Ubig {
        Ubig::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&u(12), &u(18)), u(6));
        assert_eq!(gcd(&u(0), &u(5)), u(5));
        assert_eq!(gcd(&u(5), &u(0)), u(5));
        assert_eq!(gcd(&u(17), &u(13)), u(1));
    }

    #[test]
    fn egcd_bezout_identity() {
        let a = u(240);
        let b = u(46);
        let (g, x, y) = egcd(&a, &b);
        assert_eq!(g, u(2));
        // a*x + b*y = g
        let lhs = &(&Int::from(a) * &x) + &(&Int::from(b) * &y);
        assert_eq!(lhs, Int::from(g));
    }

    #[test]
    fn modinv_small() {
        // 3 * 7 = 21 = 1 mod 10
        assert_eq!(modinv(&u(3), &u(10)), Some(u(7)));
        assert_eq!(modinv(&u(2), &u(10)), None); // gcd 2
        assert_eq!(modinv(&u(5), &Ubig::one()), None);
        assert_eq!(modinv(&u(5), &Ubig::zero()), None);
    }

    #[test]
    fn modinv_rsa_style_even_modulus() {
        // e = 65537 mod phi where phi is even: the exact case RSA keygen needs.
        let phi = u(3120); // phi(3233) for p=61,q=53
        let e = u(17);
        let d = modinv(&e, &phi).unwrap();
        assert_eq!(modmul(&e, &d, &phi), Ubig::one());
        assert_eq!(d, u(2753)); // textbook RSA example
    }

    #[test]
    fn modinv_random_multi_limb() {
        let mut rng = SplitMix64::new(7);
        let m = RandomUbig::random_bits(&mut rng, 192);
        let m = if m.is_even() { &m + &Ubig::one() } else { m };
        for _ in 0..20 {
            let a = RandomUbig::random_below(&mut rng, &m);
            if gcd(&a, &m).is_one() {
                let inv = modinv(&a, &m).unwrap();
                assert_eq!(modmul(&a, &inv, &m), Ubig::one());
                assert!(inv < m);
            }
        }
    }
}
