//! Formatting and parsing for [`Ubig`].

use crate::ubig::{ParseUbigError, Ubig};
use core::fmt;
use core::str::FromStr;

impl fmt::Display for Ubig {
    /// Decimal representation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time (10^19 fits in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let chunk = Ubig::from(CHUNK);
        let mut rest = self.clone();
        let mut groups: Vec<u64> = Vec::new();
        while !rest.is_zero() {
            let (q, r) = rest.div_rem(&chunk);
            groups.push(r.to_u64().expect("remainder below 10^19 fits in u64"));
            rest = q;
        }
        let mut s = groups.last().expect("non-zero value").to_string();
        for g in groups.iter().rev().skip(1) {
            s.push_str(&format!("{g:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::LowerHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = format!("{:x}", self.limbs.last().expect("non-zero"));
        for limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        f.write_str(&s)
    }
}

impl fmt::UpperHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{self:x}");
        f.write_str(&lower.to_uppercase())
    }
}

impl Ubig {
    /// Parse from a hexadecimal string (no `0x` prefix, underscores allowed).
    ///
    /// # Errors
    ///
    /// Returns [`ParseUbigError`] on empty input or non-hex characters.
    pub fn from_hex(s: &str) -> Result<Ubig, ParseUbigError> {
        let cleaned: String = s.chars().filter(|&c| c != '_').collect();
        if cleaned.is_empty() {
            return Err(ParseUbigError {
                reason: "empty string",
            });
        }
        let mut out = Ubig::zero();
        let sixteen = Ubig::from(16u64);
        for c in cleaned.chars() {
            let d = c.to_digit(16).ok_or(ParseUbigError {
                reason: "non-hex digit",
            })?;
            out = &out * &sixteen + Ubig::from(d as u64);
        }
        Ok(out)
    }
}

impl FromStr for Ubig {
    type Err = ParseUbigError;

    /// Parse a decimal literal, or hexadecimal with an `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            return Ubig::from_hex(hex);
        }
        if s.is_empty() {
            return Err(ParseUbigError {
                reason: "empty string",
            });
        }
        let mut out = Ubig::zero();
        let ten = Ubig::from(10u64);
        for c in s.chars().filter(|&c| c != '_') {
            let d = c.to_digit(10).ok_or(ParseUbigError {
                reason: "non-decimal digit",
            })?;
            out = &out * &ten + Ubig::from(d as u64);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_small() {
        assert_eq!(Ubig::zero().to_string(), "0");
        assert_eq!(Ubig::from(12345u64).to_string(), "12345");
    }

    #[test]
    fn display_large_pads_groups() {
        // 10^19 exactly: second group must be zero-padded.
        let v: Ubig = "10000000000000000000".parse().unwrap();
        assert_eq!(v.to_string(), "10000000000000000000");
        assert_eq!(v, Ubig::from(10_000_000_000_000_000_000u64));
    }

    #[test]
    fn hex_round_trip() {
        let v = Ubig::from(0xdead_beef_0000_0001_u64);
        assert_eq!(format!("{v:x}"), "deadbeef00000001");
        assert_eq!(Ubig::from_hex("deadbeef00000001").unwrap(), v);
        assert_eq!("0xDEADBEEF00000001".parse::<Ubig>().unwrap(), v);
    }

    #[test]
    fn hex_multi_limb_padding() {
        let v = Ubig::pow2(64); // 0x1_0000000000000000
        assert_eq!(format!("{v:x}"), "10000000000000000");
        assert_eq!(format!("{v:X}"), "10000000000000000");
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<Ubig>().is_err());
        assert!("12a".parse::<Ubig>().is_err());
        assert!(Ubig::from_hex("zz").is_err());
        let err = Ubig::from_hex("").unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn decimal_round_trip_large() {
        let v = Ubig::pow2(200);
        let s = v.to_string();
        assert_eq!(s.parse::<Ubig>().unwrap(), v);
    }
}
