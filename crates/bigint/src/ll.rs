//! Low-level limb-slice arithmetic.
//!
//! All algorithms operate on little-endian `u64` limb slices. Higher-level
//! types ([`crate::Ubig`], [`crate::MontCtx`]) are thin wrappers around these
//! primitives, so the tricky code (notably Knuth's Algorithm D) lives in
//! exactly one place.

use core::cmp::Ordering;

/// Number of significant limbs (index of highest non-zero limb + 1).
pub(crate) fn nlimbs(a: &[u64]) -> usize {
    let mut n = a.len();
    while n > 0 && a[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// Compare two limb slices as integers (leading zeros allowed).
pub(crate) fn cmp(a: &[u64], b: &[u64]) -> Ordering {
    let an = nlimbs(a);
    let bn = nlimbs(b);
    if an != bn {
        return an.cmp(&bn);
    }
    for i in (0..an).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// `a += b`, growing `a` as needed.
pub(crate) fn add_assign(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let mut carry = 0u64;
    for (i, &bl) in b.iter().enumerate() {
        let (s1, c1) = a[i].overflowing_add(bl);
        let (s2, c2) = s1.overflowing_add(carry);
        a[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut i = b.len();
    while carry != 0 {
        if i == a.len() {
            a.push(carry);
            carry = 0;
        } else {
            let (s, c) = a[i].overflowing_add(carry);
            a[i] = s;
            carry = c as u64;
            i += 1;
        }
    }
}

/// `a -= b`; returns `true` on borrow (i.e. `b > a`), in which case the
/// contents of `a` are the wrapped two's-complement-ish result and should be
/// discarded by the caller.
#[must_use]
pub(crate) fn sub_assign(a: &mut [u64], b: &[u64]) -> bool {
    debug_assert!(a.len() >= nlimbs(b));
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let bl = if i < b.len() { b[i] } else { 0 };
        let (d1, b1) = a[i].overflowing_sub(bl);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    borrow != 0
}

/// Schoolbook multiplication; result has `a.len() + b.len()` limbs.
pub(crate) fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let an = nlimbs(a);
    let bn = nlimbs(b);
    if an == 0 || bn == 0 {
        return Vec::new();
    }
    let mut out = vec![0u64; an + bn];
    for i in 0..an {
        let ai = a[i] as u128;
        if ai == 0 {
            continue;
        }
        let mut carry: u128 = 0;
        for j in 0..bn {
            let t = out[i + j] as u128 + ai * b[j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        // `carry < 2^64`, and out[i+bn] receives at most one carry per i.
        let t = out[i + bn] as u128 + carry;
        out[i + bn] = t as u64;
        debug_assert_eq!(t >> 64, 0);
    }
    out
}

/// Left shift by `s` bits; result length grows as needed.
pub(crate) fn shl(a: &[u64], s: usize) -> Vec<u64> {
    let an = nlimbs(a);
    if an == 0 {
        return Vec::new();
    }
    let limb_shift = s / 64;
    let bit_shift = s % 64;
    let mut out = vec![0u64; an + limb_shift + 1];
    if bit_shift == 0 {
        out[limb_shift..limb_shift + an].copy_from_slice(&a[..an]);
    } else {
        for i in 0..an {
            out[i + limb_shift] |= a[i] << bit_shift;
            out[i + limb_shift + 1] |= a[i] >> (64 - bit_shift);
        }
    }
    out
}

/// Right shift by `s` bits.
pub(crate) fn shr(a: &[u64], s: usize) -> Vec<u64> {
    let an = nlimbs(a);
    let limb_shift = s / 64;
    if limb_shift >= an {
        return Vec::new();
    }
    let bit_shift = s % 64;
    let n = an - limb_shift;
    let mut out = vec![0u64; n];
    if bit_shift == 0 {
        out.copy_from_slice(&a[limb_shift..an]);
    } else {
        for i in 0..n {
            let lo = a[i + limb_shift] >> bit_shift;
            let hi = if i + limb_shift + 1 < an {
                a[i + limb_shift + 1] << (64 - bit_shift)
            } else {
                0
            };
            out[i] = lo | hi;
        }
    }
    out
}

/// Bit length of the integer represented by `a`.
pub(crate) fn bits(a: &[u64]) -> usize {
    let an = nlimbs(a);
    if an == 0 {
        0
    } else {
        an * 64 - a[an - 1].leading_zeros() as usize
    }
}

/// Quotient and remainder by a single limb.
fn div_rem_limb(u: &[u64], d: u64) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(d != 0);
    let un = nlimbs(u);
    let d128 = d as u128;
    let mut q = vec![0u64; un];
    let mut rem: u128 = 0;
    for i in (0..un).rev() {
        let cur = (rem << 64) | u[i] as u128;
        q[i] = (cur / d128) as u64;
        rem = cur % d128;
    }
    (q, vec![rem as u64])
}

/// Knuth Algorithm D: full multi-precision division.
///
/// Returns `(quotient, remainder)` with `u = q * v + r`, `0 <= r < v`.
///
/// # Panics
///
/// Panics if `v` is zero.
pub(crate) fn div_rem(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let un = nlimbs(u);
    let vn = nlimbs(v);
    assert!(vn > 0, "division by zero");
    if cmp(&u[..un], &v[..vn]) == Ordering::Less {
        return (Vec::new(), u[..un].to_vec());
    }
    if vn == 1 {
        return div_rem_limb(&u[..un], v[0]);
    }

    // Normalize: shift so the divisor's top limb has its high bit set.
    let s = v[vn - 1].leading_zeros() as usize;
    let vv = {
        let mut t = shl(&v[..vn], s);
        t.truncate(vn); // shl pads one extra limb; normalization keeps vn limbs
        t
    };
    let mut uu = shl(&u[..un], s);
    // Ensure exactly un + 1 limbs so uu[j + vn] is always in range.
    uu.resize(un + 1, 0);

    let b: u128 = 1 << 64;
    let v1 = vv[vn - 1] as u128;
    let v0 = vv[vn - 2] as u128;
    let mut q = vec![0u64; un - vn + 1];

    for j in (0..=un - vn).rev() {
        let u2 = uu[j + vn] as u128;
        let u1 = uu[j + vn - 1] as u128;
        let u0 = uu[j + vn - 2] as u128;

        // Estimate the quotient digit from the top three limbs.
        let num = (u2 << 64) | u1;
        let mut qhat = num / v1;
        let mut rhat = num - qhat * v1;
        while qhat >= b || qhat * v0 > ((rhat << 64) | u0) {
            qhat -= 1;
            rhat += v1;
            if rhat >= b {
                break;
            }
        }

        // Multiply-subtract: uu[j..=j+vn] -= qhat * vv
        let mut mul_carry: u128 = 0;
        let mut borrow: u64 = 0;
        for i in 0..vn {
            let p = qhat * vv[i] as u128 + mul_carry;
            mul_carry = p >> 64;
            let (d1, b1) = uu[j + i].overflowing_sub(p as u64);
            let (d2, b2) = d1.overflowing_sub(borrow);
            uu[j + i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        let (d1, b1) = uu[j + vn].overflowing_sub(mul_carry as u64);
        let (d2, b2) = d1.overflowing_sub(borrow);
        uu[j + vn] = d2;

        let mut qdigit = qhat as u64;
        if b1 || b2 {
            // Estimate was one too large: add the divisor back.
            qdigit -= 1;
            let mut carry = 0u64;
            for i in 0..vn {
                let (s1, c1) = uu[j + i].overflowing_add(vv[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                uu[j + i] = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
            uu[j + vn] = uu[j + vn].wrapping_add(carry);
        }
        q[j] = qdigit;
    }

    let r = shr(&uu[..vn], s);
    (q, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nlimbs_strips_leading_zeros() {
        assert_eq!(nlimbs(&[]), 0);
        assert_eq!(nlimbs(&[0, 0]), 0);
        assert_eq!(nlimbs(&[1, 0]), 1);
        assert_eq!(nlimbs(&[0, 7]), 2);
    }

    #[test]
    fn cmp_ignores_padding() {
        assert_eq!(cmp(&[5, 0, 0], &[5]), Ordering::Equal);
        assert_eq!(cmp(&[5], &[6]), Ordering::Less);
        assert_eq!(cmp(&[0, 1], &[u64::MAX]), Ordering::Greater);
    }

    #[test]
    fn add_carries_across_limbs() {
        let mut a = vec![u64::MAX];
        add_assign(&mut a, &[1]);
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn sub_borrows() {
        let mut a = vec![0, 1];
        assert!(!sub_assign(&mut a, &[1]));
        assert_eq!(a, vec![u64::MAX, 0]);
        let mut b = vec![3];
        assert!(sub_assign(&mut b, &[5]));
    }

    #[test]
    fn mul_simple() {
        assert_eq!(nlimbs(&mul(&[0], &[7])), 0);
        let p = mul(&[u64::MAX], &[u64::MAX]);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(p, vec![1, u64::MAX - 1]);
    }

    #[test]
    fn shift_round_trip() {
        let a = [0xdead_beef_u64, 0x1234];
        for s in [0usize, 1, 7, 63, 64, 65, 100] {
            let up = shl(&a, s);
            let down = shr(&up, s);
            assert_eq!(cmp(&down, &a), Ordering::Equal, "shift {s}");
        }
    }

    #[test]
    fn div_by_limb() {
        let (q, r) = div_rem(&[7, 3], &[2]);
        // 3*2^64 + 7 = 2*(1.5*2^64 + 3) + 1
        let back = {
            let mut t = mul(&q, &[2]);
            add_assign(&mut t, &r);
            t
        };
        assert_eq!(cmp(&back, &[7, 3]), Ordering::Equal);
        assert_eq!(cmp(&r, &[2]), Ordering::Less);
    }

    #[test]
    fn div_multi_limb_reconstructs() {
        let u = [0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210, 0xaaaa, 7];
        let v = [0xffff_ffff_0000_0001, 3];
        let (q, r) = div_rem(&u, &v);
        let mut back = mul(&q, &v);
        add_assign(&mut back, &r);
        assert_eq!(cmp(&back, &u), Ordering::Equal);
        assert_eq!(cmp(&r, &v), Ordering::Less);
    }

    #[test]
    fn div_triggers_add_back() {
        // Classic add-back stress: u = [0, qhat-overflow pattern]
        let u = [0, 0, 0x8000_0000_0000_0000];
        let v = [1, 0, 0x8000_0000_0000_0000];
        let (q, r) = div_rem(&u, &v);
        let mut back = mul(&q, &v);
        add_assign(&mut back, &r);
        assert_eq!(cmp(&back, &u), Ordering::Equal);
        assert_eq!(cmp(&r, &v), Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = div_rem(&[1], &[0]);
    }
}
