//! Montgomery multiplication context for fast modular exponentiation.

use crate::ll;
use crate::Ubig;
use core::cmp::Ordering;

/// Precomputed context for Montgomery arithmetic modulo an odd modulus.
///
/// Montgomery form represents `x` as `x·R mod m` where `R = 2^(64·L)` and
/// `L` is the limb count of `m`. Multiplication in this form avoids the
/// expensive per-step division of naive modular arithmetic, which makes
/// `modpow` (the hot operation of Schnorr/RSA in `fd-crypto`) roughly an
/// order of magnitude faster.
///
/// ```
/// use fd_bigint::{MontCtx, Ubig};
/// let m = Ubig::from(101u64);
/// let ctx = MontCtx::new(&m).unwrap();
/// let r = ctx.modpow(&Ubig::from(2u64), &Ubig::from(100u64));
/// assert_eq!(r, Ubig::one()); // Fermat
/// ```
#[derive(Debug, Clone)]
pub struct MontCtx {
    /// Modulus limbs, exactly `l` of them (top limb non-zero).
    m: Vec<u64>,
    /// `-m^{-1} mod 2^64`.
    n0: u64,
    /// `R^2 mod m`, used to convert into Montgomery form.
    r2: Vec<u64>,
    /// `R mod m` — the Montgomery representation of 1.
    one: Vec<u64>,
    /// Limb count `L`.
    l: usize,
}

impl MontCtx {
    /// Create a context for odd modulus `m > 1`.
    ///
    /// Returns `None` if `m` is even or `<= 1` (Montgomery reduction requires
    /// `gcd(m, 2^64) = 1`).
    pub fn new(m: &Ubig) -> Option<MontCtx> {
        if m.is_even() || m.is_one() || m.is_zero() {
            return None;
        }
        let l = m.limbs().len();
        // Newton–Hensel iteration for the inverse of m[0] mod 2^64.
        let m0 = m.limbs()[0];
        let mut inv = m0; // valid to 3 bits
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0 = inv.wrapping_neg();

        // R mod m and R^2 mod m via plain division (one-time cost).
        let r = &Ubig::pow2(64 * l) % m;
        let r2 = &(&r * &r) % m;

        let mut one = r.limbs().to_vec();
        one.resize(l, 0);
        let mut r2_limbs = r2.limbs().to_vec();
        r2_limbs.resize(l, 0);

        Some(MontCtx {
            m: m.limbs().to_vec(),
            n0,
            r2: r2_limbs,
            one,
            l,
        })
    }

    /// The modulus.
    pub fn modulus(&self) -> Ubig {
        Ubig::from_limbs(self.m.clone())
    }

    /// CIOS Montgomery multiplication: returns `a·b·R^{-1} mod m`.
    ///
    /// Inputs must be `l`-limb slices with values `< m`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let l = self.l;
        debug_assert_eq!(a.len(), l);
        debug_assert_eq!(b.len(), l);
        let mut t = vec![0u64; l + 2];
        for &ai in a.iter().take(l) {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..l {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[l] as u128 + carry;
            t[l] = s as u64;
            t[l + 1] = t[l + 1].wrapping_add((s >> 64) as u64);

            // Reduce: make t divisible by 2^64 and shift down one limb.
            let mu = t[0].wrapping_mul(self.n0);
            let mut carry: u128 = (t[0] as u128 + mu as u128 * self.m[0] as u128) >> 64;
            for j in 1..l {
                let s = t[j] as u128 + mu as u128 * self.m[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[l] as u128 + carry;
            t[l - 1] = s as u64;
            let s2 = t[l + 1] as u128 + (s >> 64);
            t[l] = s2 as u64;
            t[l + 1] = (s2 >> 64) as u64;
        }
        debug_assert_eq!(t[l + 1], 0);
        let needs_sub = t[l] != 0 || ll::cmp(&t[..self.l], &self.m) != Ordering::Less;
        let mut out = t;
        if needs_sub {
            let borrow = ll::sub_assign(&mut out[..l + 1], &self.m);
            debug_assert!(!borrow);
        }
        out.truncate(l);
        out
    }

    /// Convert into Montgomery form (`x` must be `< m`; reduced otherwise).
    fn to_mont(&self, x: &Ubig) -> Vec<u64> {
        let reduced = if ll::cmp(x.limbs(), &self.m) == Ordering::Less {
            x.clone()
        } else {
            x % &self.modulus()
        };
        let mut limbs = reduced.limbs().to_vec();
        limbs.resize(self.l, 0);
        self.mont_mul(&limbs, &self.r2)
    }

    /// Convert out of Montgomery form.
    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, x: &[u64]) -> Ubig {
        let one = {
            let mut v = vec![0u64; self.l];
            v[0] = 1;
            v
        };
        Ubig::from_limbs(self.mont_mul(x, &one))
    }

    /// `a·b mod m`.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod m` by left-to-right square-and-multiply in Montgomery
    /// form.
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return &Ubig::one() % &self.modulus();
        }
        let base_m = self.to_mont(base);
        let mut acc = self.one.clone();
        let nbits = exp.bits();
        for i in (0..nbits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn naive_modpow(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
        let mut acc = &Ubig::one() % m;
        for i in (0..exp.bits()).rev() {
            acc = &(&acc * &acc) % m;
            if exp.bit(i) {
                acc = &(&acc * base) % m;
            }
        }
        acc
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontCtx::new(&Ubig::from(10u64)).is_none());
        assert!(MontCtx::new(&Ubig::one()).is_none());
        assert!(MontCtx::new(&Ubig::zero()).is_none());
        assert!(MontCtx::new(&Ubig::from(9u64)).is_some());
    }

    #[test]
    fn mul_matches_naive_small() {
        let m = Ubig::from(1_000_000_007u64);
        let ctx = MontCtx::new(&m).unwrap();
        let a = Ubig::from(123_456_789u64);
        let b = Ubig::from(987_654_321u64);
        assert_eq!(ctx.mul(&a, &b), &(&a * &b) % &m);
    }

    #[test]
    fn modpow_matches_naive_multi_limb() {
        let mut rng = SplitMix64::new(42);
        for trial in 0..10 {
            let mut m = crate::RandomUbig::random_bits(&mut rng, 192);
            if m.is_even() {
                m = &m + &Ubig::one();
            }
            if m.is_one() || m.is_zero() {
                continue;
            }
            let base = crate::RandomUbig::random_bits(&mut rng, 256);
            let exp = crate::RandomUbig::random_bits(&mut rng, 64);
            let ctx = MontCtx::new(&m).unwrap();
            assert_eq!(
                ctx.modpow(&base, &exp),
                naive_modpow(&base, &exp, &m),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn modpow_edge_cases() {
        let m = Ubig::from(97u64);
        let ctx = MontCtx::new(&m).unwrap();
        // exp = 0 -> 1
        assert_eq!(ctx.modpow(&Ubig::from(5u64), &Ubig::zero()), Ubig::one());
        // base = 0 -> 0
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::from(5u64)), Ubig::zero());
        // base >= m gets reduced
        assert_eq!(
            ctx.modpow(&Ubig::from(97u64 + 3), &Ubig::from(2u64)),
            Ubig::from(9u64)
        );
    }

    #[test]
    fn fermat_little_theorem() {
        let p = Ubig::from(1_000_000_007u64);
        let ctx = MontCtx::new(&p).unwrap();
        let e = &p - &Ubig::one();
        for base in [2u64, 3, 65537, 999_999_999] {
            assert_eq!(ctx.modpow(&Ubig::from(base), &e), Ubig::one());
        }
    }
}
