//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` and `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and `black_box` — with a simple
//! measure-and-print implementation: each benchmark is warmed up once, then
//! timed over a bounded number of iterations, and the mean wall-clock time
//! per iteration is printed to stdout.
//!
//! There is no statistical analysis, no plotting and no baseline storage;
//! the numbers are indicative. The value of keeping the benches compiling
//! and runnable is that the workspace's timing experiments stay exercised
//! end to end (CI builds them; `cargo bench` runs them).
//!
//! **Machine-readable results:** when the `CRITERION_JSON` environment
//! variable names a file, every measurement is also appended to it as one
//! JSON object per line (`{"label": …, "ns_per_iter": …, "iters": …}`),
//! so bench runs can be archived and diffed without scraping stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Maximum wall-clock budget spent measuring a single benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(250);

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label; lets `bench_function` accept both
/// string-ish names and [`BenchmarkId`]s, as the real crate does.
pub trait IntoBenchmarkLabel {
    /// The display label of the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for &String {
    fn into_label(self) -> String {
        self.clone()
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Measured mean time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            elapsed_per_iter: None,
            iters: 0,
        }
    }

    /// Measure `routine` over a bounded number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, also catches panics early
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < self.sample_size as u64 && start.elapsed() < MEASURE_BUDGET {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.iters = iters.max(1);
        self.elapsed_per_iter = Some(total / u32::try_from(self.iters).unwrap_or(u32::MAX));
    }
}

fn report(label: &str, bencher: &Bencher) {
    match bencher.elapsed_per_iter {
        Some(per_iter) => println!(
            "bench: {label:<40} {per_iter:>12.3?}/iter ({} iters)",
            bencher.iters
        ),
        None => println!("bench: {label:<40} (no measurement: Bencher::iter never called)"),
    }
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            if let Err(e) = append_json_line(&path, label, bencher) {
                eprintln!("criterion shim: cannot append to {path}: {e}");
            }
        }
    }
}

/// Append one machine-readable result line (JSON object) to `path`.
fn append_json_line(path: &str, label: &str, bencher: &Bencher) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    match bencher.elapsed_per_iter {
        Some(per_iter) => writeln!(
            file,
            "{{\"label\": \"{escaped}\", \"ns_per_iter\": {}, \"iters\": {}}}",
            per_iter.as_nanos(),
            bencher.iters
        ),
        None => writeln!(
            file,
            "{{\"label\": \"{escaped}\", \"ns_per_iter\": null, \"iters\": 0}}"
        ),
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark (an upper bound here;
    /// measurement is also time-capped).
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.max(1);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&label, &bencher);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&label, &bencher);
        self
    }

    /// Finish the group (a no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.effective_sample_size(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.effective_sample_size());
        f(&mut bencher);
        report(&id.into_label(), &bencher);
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        }
    }
}

/// Define a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4usize), &4usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_with_input(BenchmarkId::new("f", 8), &8usize, |b, _| b.iter(|| ()));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn bencher_records_time() {
        let mut b = Bencher::new(5);
        b.iter(|| std::hint::black_box(17u64.wrapping_mul(31)));
        assert!(b.elapsed_per_iter.is_some());
        assert!(b.iters >= 1);
    }

    #[test]
    fn json_line_is_machine_readable() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let mut b = Bencher::new(2);
        b.iter(|| 1 + 1);
        append_json_line(path.to_str().unwrap(), "g/\"quoted\"", &b).unwrap();
        append_json_line(path.to_str().unwrap(), "second", &Bencher::new(1)).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"label\": \"g/\\\"quoted\\\"\""));
        assert!(lines[0].contains("\"ns_per_iter\": "));
        assert!(lines[1].contains("\"ns_per_iter\": null"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
