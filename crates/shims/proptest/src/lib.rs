//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! the real proptest cannot be fetched. This crate implements the subset of
//! its API that the workspace's property tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `any`, `Just`, integer-range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::Index`, `prop_map`
//! and `prop_flat_map` — on top of a small deterministic RNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the case number and RNG seed
//!   (generation is a pure function of those), not a minimized input.
//! * **Deterministic by default.** Every test function derives its RNG
//!   stream from its own name, so runs are reproducible across machines —
//!   which the workspace's determinism-sensitive CI prefers anyway.
//! * Set `PROPTEST_CASES` to override the per-test case count globally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG (SplitMix64) driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an arbitrary 64-bit value.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    ///
    /// Uses the widening-multiply reduction, which is unbiased enough for
    /// test-input generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-property error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
///
/// Unlike the real proptest there is no value tree: a strategy is just a
/// pure function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy `f`
    /// derives from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Project onto a collection of length `len` (which must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespace mirror of the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Derive the RNG seed for one test case from the test's name and case
/// number (FNV-1a over the name, mixed with the case index).
#[must_use]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case) << 1)
}

/// Discard the current case when an assumption does not hold.
///
/// Unlike the real crate, a rejected case still counts toward the case
/// total (it is simply skipped), so tests cannot fail from too many
/// rejections.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests.
///
/// Mirrors the real macro's surface for the forms used in this workspace:
/// an optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = config.effective_cases();
                for case in 0..cases {
                    let seed = $crate::case_seed(stringify!($name), case);
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{} (rng seed {:#x}):\n{}",
                            stringify!($name), case, cases, seed, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10usize..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u8..=3).generate(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn sample_index_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let ix = any::<prop::sample::Index>().generate(&mut rng);
            assert!(ix.index(13) < 13);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_tuples_and_maps((a, b) in (0usize..5, Just(7usize)), v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 5);
            prop_assert_eq!(b, 7);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn flat_map_dependent_ranges(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k={k} n={n}");
        }
    }
}
