//! The signature-scheme abstraction used by the protocol layer.
//!
//! The paper's model (§2) is deliberately abstract: nodes hold a secret key
//! `S_i`, publish a *test predicate* `T_i`, and a signed message `{m}_S`
//! verifies under `T_i` iff `S = S_i` (properties S1–S3). The protocol layer
//! in `fd-core` works exclusively through [`SignatureScheme`] trait objects
//! and the opaque byte-wrappers below, so every protocol runs unchanged over
//! Schnorr, RSA, or the deliberately broken [`crate::ToyScheme`].

use crate::CryptoError;
use core::fmt;

/// A secret signing key, encoded by its scheme.
///
/// Corresponds to `S_i` in the paper. The bytes are scheme-specific and
/// opaque to the protocol layer; they never travel on the wire in correct
/// runs (adversaries may leak them — that is the G3 attack of §3.2).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SecretKey(pub Vec<u8>);

/// A public verification key — the paper's *test predicate* `T_i`.
///
/// This is exactly the object the key distribution protocol (paper Fig. 1)
/// disseminates, so it is an ordinary wire-encodable byte string.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PublicKey(pub Vec<u8>);

/// A signature `{m}_S` detached from its message.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature(pub Vec<u8>);

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print secret key material.
        write!(f, "SecretKey(<{} bytes redacted>)", self.0.len())
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({})", short_hex(&self.0))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({})", short_hex(&self.0))
    }
}

fn short_hex(b: &[u8]) -> String {
    let head: String = b.iter().take(6).map(|x| format!("{x:02x}")).collect();
    if b.len() > 6 {
        format!("{head}…[{}B]", b.len())
    } else {
        format!("{head}[{}B]", b.len())
    }
}

impl PublicKey {
    /// Borrow the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl Signature {
    /// Borrow the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// An object-safe signature scheme satisfying the paper's S1–S3 (or, for
/// test doubles, deliberately failing them).
///
/// Determinism: `keypair_from_seed` must be a pure function of the seed and
/// scheme parameters, and `sign` must be deterministic (nonces are derived
/// RFC 6979-style), so whole protocol runs replay bit-for-bit.
pub trait SignatureScheme: fmt::Debug + Send + Sync {
    /// Human-readable name including parameters, e.g. `"schnorr-512/160"`.
    fn name(&self) -> String;

    /// Deterministically generate a keypair from a seed.
    fn keypair_from_seed(&self, seed: u64) -> (SecretKey, PublicKey);

    /// Sign `msg` with `sk`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MalformedSecretKey`] when the key bytes do not
    /// decode for this scheme.
    fn sign(&self, sk: &SecretKey, msg: &[u8]) -> Result<Signature, CryptoError>;

    /// Evaluate the test predicate: does `sig` verify for `msg` under `pk`?
    ///
    /// Malformed keys or signatures simply fail verification (return
    /// `false`) — in the paper's model there is no separate "error" outcome
    /// for the predicate.
    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool;

    /// Nominal encoded public-key length in bytes (wire-size accounting).
    fn public_key_len(&self) -> usize;

    /// Nominal encoded signature length in bytes (wire-size accounting).
    fn signature_len(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_key_debug_redacts() {
        let sk = SecretKey(vec![1, 2, 3]);
        let s = format!("{sk:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains("01"));
    }

    #[test]
    fn public_key_debug_shows_prefix() {
        let pk = PublicKey(vec![0xab; 20]);
        let s = format!("{pk:?}");
        assert!(s.contains("abab"));
        assert!(s.contains("20B"));
    }

    #[test]
    fn short_signature_debug() {
        let sig = Signature(vec![0x01, 0x02]);
        assert_eq!(format!("{sig:?}"), "Signature(0102[2B])");
    }
}
