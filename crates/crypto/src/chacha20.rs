//! ChaCha20 block function (RFC 8439), implemented from scratch.
//!
//! Used only as the core of [`crate::ChaChaDrbg`]; we do not provide an
//! encryption API. Verified against the RFC 8439 §2.3.2 test vector.

/// The ChaCha constant "expand 32-byte k".
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha20 keystream block.
///
/// `key` is 8 little-endian words, `counter` the 32-bit block counter,
/// `nonce` 3 little-endian words (RFC 8439 layout).
pub fn chacha20_block(key: &[u32; 8], counter: u32, nonce: &[u32; 3]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter;
    state[13..16].copy_from_slice(nonce);

    let initial = state;
    for _ in 0..10 {
        // Column rounds
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2
        let key: [u32; 8] = [
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918,
            0x1f1e1d1c,
        ];
        let nonce: [u32; 3] = [0x09000000, 0x4a000000, 0x00000000];
        let block = chacha20_block(&key, 1, &nonce);
        let expected_head = [
            0x10u8, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expected_head);
        let expected_tail = [
            0xb5u8, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50,
            0x3c, 0x4e,
        ];
        assert_eq!(&block[48..], &expected_tail);
    }

    #[test]
    fn counter_changes_block() {
        let key = [7u32; 8];
        let nonce = [1u32, 2, 3];
        assert_ne!(
            chacha20_block(&key, 0, &nonce),
            chacha20_block(&key, 1, &nonce)
        );
    }

    #[test]
    fn key_changes_block() {
        let nonce = [0u32; 3];
        assert_ne!(
            chacha20_block(&[0u32; 8], 0, &nonce),
            chacha20_block(&[1u32; 8], 0, &nonce)
        );
    }
}
