//! Error type for the crypto substrate.

use core::fmt;

/// Errors produced by key parsing, signing, or scheme setup.
///
/// Verification deliberately does *not* return this type: in the paper's
/// model a signature either passes the test predicate or it does not, so
/// [`crate::SignatureScheme::verify`] returns `bool` and treats malformed
/// input as "does not verify".
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A secret key could not be decoded for this scheme.
    MalformedSecretKey,
    /// A public key could not be decoded for this scheme.
    MalformedPublicKey,
    /// Scheme parameters are invalid (e.g. key size too small).
    InvalidParameters(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::MalformedSecretKey => write!(f, "malformed secret key"),
            CryptoError::MalformedPublicKey => write!(f, "malformed public key"),
            CryptoError::InvalidParameters(why) => write!(f, "invalid parameters: {why}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        for e in [
            CryptoError::MalformedSecretKey,
            CryptoError::MalformedPublicKey,
            CryptoError::InvalidParameters("too small"),
        ] {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
