//! Schnorr signatures over [`SchnorrGroup`]s.
//!
//! This is the DSA-family instantiation of the paper's S1–S3 assumption.
//! Signing is deterministic (RFC 6979-style nonce derivation), which keeps
//! whole protocol runs replayable from a single seed.

use crate::group::SchnorrGroup;
use crate::scheme::{PublicKey, SecretKey, Signature, SignatureScheme};
use crate::sha256::sha256_parts;
use crate::{ChaChaDrbg, CryptoError};
use fd_bigint::{modadd, modmul, modsub, RandomUbig, Ubig};

/// Schnorr signature scheme: `sk = x`, `pk = g^x mod p`,
/// signature `(e, s)` with `e = H(r ‖ m)`, `s = k − x·e (mod q)`.
///
/// Verification recomputes `r' = g^s · y^e mod p` and checks
/// `H(r' ‖ m) = e` — the public key `y` is precisely the paper's test
/// predicate `T_i`.
///
/// ```
/// use fd_crypto::{SchnorrScheme, SignatureScheme};
/// let scheme = SchnorrScheme::test_tiny();
/// let (sk, pk) = scheme.keypair_from_seed(1);
/// let sig = scheme.sign(&sk, b"value: 42")?;
/// assert!(scheme.verify(&pk, b"value: 42", &sig));
/// # Ok::<(), fd_crypto::CryptoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SchnorrScheme {
    group: &'static SchnorrGroup,
}

impl SchnorrScheme {
    /// Scheme over an explicit (static) group.
    pub fn new(group: &'static SchnorrGroup) -> Self {
        SchnorrScheme { group }
    }

    /// Tiny test parameters (see [`SchnorrGroup::test_tiny`]).
    pub fn test_tiny() -> Self {
        Self::new(SchnorrGroup::test_tiny())
    }

    /// Historical DSA-size parameters (512/160).
    pub fn s512() -> Self {
        Self::new(SchnorrGroup::s512())
    }

    /// 1024/160 parameters.
    pub fn s1024() -> Self {
        Self::new(SchnorrGroup::s1024())
    }

    /// Modern-size parameters (2048/256).
    pub fn s2048() -> Self {
        Self::new(SchnorrGroup::s2048())
    }

    /// The underlying group.
    pub fn group(&self) -> &'static SchnorrGroup {
        self.group
    }

    fn decode_scalar(&self, bytes: &[u8]) -> Option<Ubig> {
        if bytes.len() != self.group.scalar_len() {
            return None;
        }
        let v = Ubig::from_be_bytes(bytes);
        (v < *self.group.q()).then_some(v)
    }

    /// Hash to a scalar: `H(domain ‖ parts…) mod q`, never zero.
    fn hash_to_scalar(&self, parts: &[&[u8]]) -> Ubig {
        let mut all: Vec<&[u8]> = Vec::with_capacity(parts.len() + 2);
        let label = self.group.label().as_bytes();
        all.push(b"fd-schnorr-v1");
        all.push(label);
        all.extend_from_slice(parts);
        let digest = sha256_parts(&all);
        let e = &Ubig::from_be_bytes(&digest) % self.group.q();
        if e.is_zero() {
            Ubig::one()
        } else {
            e
        }
    }
}

impl SignatureScheme for SchnorrScheme {
    fn name(&self) -> String {
        format!("schnorr-{}", self.group.label())
    }

    fn keypair_from_seed(&self, seed: u64) -> (SecretKey, PublicKey) {
        let mut material = Vec::new();
        material.extend_from_slice(b"schnorr-keygen");
        material.extend_from_slice(self.group.label().as_bytes());
        material.extend_from_slice(&seed.to_be_bytes());
        let mut rng = ChaChaDrbg::from_seed_material(&material);
        let one = Ubig::one();
        // x uniform in [1, q)
        let x = &rng.random_below(&(self.group.q() - &one)) + &one;
        let y = self.group.pow(self.group.g(), &x);
        let sk = x
            .to_be_bytes_fixed(self.group.scalar_len())
            .expect("x < q fits scalar width");
        let pk = y
            .to_be_bytes_fixed(self.group.element_len())
            .expect("y < p fits element width");
        (SecretKey(sk), PublicKey(pk))
    }

    fn sign(&self, sk: &SecretKey, msg: &[u8]) -> Result<Signature, CryptoError> {
        let x = self
            .decode_scalar(&sk.0)
            .ok_or(CryptoError::MalformedSecretKey)?;
        let q = self.group.q();
        // Deterministic nonce: k = H("nonce" ‖ sk ‖ m) mod q (RFC 6979 in
        // spirit; the secret key binds the nonce to the signer).
        let k = self.hash_to_scalar(&[b"nonce", &sk.0, msg]);
        let r = self.group.pow(self.group.g(), &k);
        let r_bytes = r
            .to_be_bytes_fixed(self.group.element_len())
            .expect("r < p");
        let e = self.hash_to_scalar(&[b"chal", &r_bytes, msg]);
        // s = k - x*e mod q
        let s = modsub(&k, &modmul(&x, &e, q), q);

        let mut sig = e.to_be_bytes_fixed(self.group.scalar_len()).expect("e < q");
        sig.extend_from_slice(&s.to_be_bytes_fixed(self.group.scalar_len()).expect("s < q"));
        Ok(Signature(sig))
    }

    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        let scalar_len = self.group.scalar_len();
        if sig.0.len() != 2 * scalar_len || pk.0.len() != self.group.element_len() {
            return false;
        }
        let y = Ubig::from_be_bytes(&pk.0);
        if y.is_zero() || y >= *self.group.p() {
            return false;
        }
        let (e, s) = match (
            self.decode_scalar(&sig.0[..scalar_len]),
            self.decode_scalar(&sig.0[scalar_len..]),
        ) {
            (Some(e), Some(s)) => (e, s),
            _ => return false,
        };
        // r' = g^s * y^e mod p
        let r = self
            .group
            .mul(&self.group.pow(self.group.g(), &s), &self.group.pow(&y, &e));
        let r_bytes = match r.to_be_bytes_fixed(self.group.element_len()) {
            Some(b) => b,
            None => return false,
        };
        self.hash_to_scalar(&[b"chal", &r_bytes, msg]) == e
    }

    fn public_key_len(&self) -> usize {
        self.group.element_len()
    }

    fn signature_len(&self) -> usize {
        2 * self.group.scalar_len()
    }
}

/// Scalar addition helper exposed for tests (`s = k − x·e` algebra).
#[allow(dead_code)]
fn scalar_add(group: &SchnorrGroup, a: &Ubig, b: &Ubig) -> Ubig {
    modadd(a, b, group.q())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> SchnorrScheme {
        SchnorrScheme::test_tiny()
    }

    #[test]
    fn sign_verify_round_trip() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"message").unwrap();
        assert!(s.verify(&pk, b"message", &sig));
    }

    #[test]
    fn rejects_wrong_message() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"message").unwrap();
        assert!(!s.verify(&pk, b"other", &sig));
    }

    #[test]
    fn rejects_wrong_key_s2() {
        // Property S2: T_i({m}_S) = true iff S = S_i.
        let s = scheme();
        let (sk1, _) = s.keypair_from_seed(1);
        let (_, pk2) = s.keypair_from_seed(2);
        let sig = s.sign(&sk1, b"message").unwrap();
        assert!(!s.verify(&pk2, b"message", &sig));
    }

    #[test]
    fn rejects_tampered_signature() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"message").unwrap();
        for i in 0..sig.0.len() {
            let mut bad = sig.clone();
            bad.0[i] ^= 0x01;
            assert!(!s.verify(&pk, b"message", &bad), "byte {i}");
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"m").unwrap();
        assert!(!s.verify(&PublicKey(vec![]), b"m", &sig));
        assert!(!s.verify(&pk, b"m", &Signature(vec![1, 2, 3])));
        assert!(!s.verify(&PublicKey(vec![0; s.public_key_len()]), b"m", &sig));
        assert!(s.sign(&SecretKey(vec![9; 99]), b"m").is_err());
    }

    #[test]
    fn deterministic_keys_and_signatures() {
        let s = scheme();
        let (sk_a, pk_a) = s.keypair_from_seed(7);
        let (sk_b, pk_b) = s.keypair_from_seed(7);
        assert_eq!(pk_a, pk_b);
        assert_eq!(s.sign(&sk_a, b"x").unwrap(), s.sign(&sk_b, b"x").unwrap());
    }

    #[test]
    fn different_seeds_different_keys() {
        let s = scheme();
        let (_, pk1) = s.keypair_from_seed(1);
        let (_, pk2) = s.keypair_from_seed(2);
        assert_ne!(pk1, pk2);
    }

    #[test]
    fn lengths_advertised_match_actual() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(3);
        let sig = s.sign(&sk, b"z").unwrap();
        assert_eq!(pk.0.len(), s.public_key_len());
        assert_eq!(sig.0.len(), s.signature_len());
    }

    #[test]
    fn empty_message_signs() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(4);
        let sig = s.sign(&sk, b"").unwrap();
        assert!(s.verify(&pk, b"", &sig));
        assert!(!s.verify(&pk, b"a", &sig));
    }

    #[test]
    fn name_mentions_group() {
        assert_eq!(scheme().name(), "schnorr-tiny-96/48");
    }
}
