//! A deliberately broken signature scheme for adversarial tests.
//!
//! The paper's guarantees (Theorems 2 and 4) hold *only if* the signature
//! scheme satisfies S1–S3. [`ToyScheme`] violates S1 and S3 on purpose: the
//! "signature" is `SHA-256(pk ‖ m)`, so anyone who has seen the public key
//! can forge. The adversarial test-suite uses it to demonstrate that the
//! failure-discovery guarantees genuinely depend on the signature
//! assumption, not on the protocol structure alone.

use crate::scheme::{PublicKey, SecretKey, Signature, SignatureScheme};
use crate::sha256::sha256_parts;
use crate::CryptoError;

/// Broken-on-purpose scheme: `pk = sk`, `sig = SHA-256(pk ‖ m)`.
///
/// **Never** use outside tests. Violates S1 (knowing `T_i` suffices to
/// sign) and S3 (the secret key *is* the test predicate).
#[derive(Debug, Clone, Default)]
pub struct ToyScheme;

impl ToyScheme {
    /// Create the toy scheme.
    pub fn new() -> Self {
        ToyScheme
    }

    /// Forge a signature from the *public* key alone — the S1 violation,
    /// packaged for adversaries in tests.
    pub fn forge(&self, pk: &PublicKey, msg: &[u8]) -> Signature {
        Signature(sha256_parts(&[b"toy", &pk.0, msg]).to_vec())
    }
}

impl SignatureScheme for ToyScheme {
    fn name(&self) -> String {
        "toy-broken".to_string()
    }

    fn keypair_from_seed(&self, seed: u64) -> (SecretKey, PublicKey) {
        let material = sha256_parts(&[b"toy-keygen", &seed.to_be_bytes()]);
        (SecretKey(material.to_vec()), PublicKey(material.to_vec()))
    }

    fn sign(&self, sk: &SecretKey, msg: &[u8]) -> Result<Signature, CryptoError> {
        if sk.0.len() != 32 {
            return Err(CryptoError::MalformedSecretKey);
        }
        Ok(Signature(sha256_parts(&[b"toy", &sk.0, msg]).to_vec()))
    }

    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        pk.0.len() == 32 && sig.0[..] == sha256_parts(&[b"toy", &pk.0, msg])[..]
    }

    fn public_key_len(&self) -> usize {
        32
    }

    fn signature_len(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_path_works() {
        let s = ToyScheme::new();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"m").unwrap();
        assert!(s.verify(&pk, b"m", &sig));
        assert!(!s.verify(&pk, b"n", &sig));
    }

    #[test]
    fn s1_violation_forgery_succeeds() {
        let s = ToyScheme::new();
        let (_, pk) = s.keypair_from_seed(1);
        // No secret key needed:
        let forged = s.forge(&pk, b"I never said this");
        assert!(s.verify(&pk, b"I never said this", &forged));
    }

    #[test]
    fn malformed_key_errors() {
        let s = ToyScheme::new();
        assert!(s.sign(&SecretKey(vec![1]), b"m").is_err());
        assert!(!s.verify(&PublicKey(vec![1]), b"m", &Signature(vec![0; 32])));
    }
}
