//! # fd-crypto
//!
//! From-scratch cryptographic substrate for the
//! [Borcherding 1995](https://doi.org/10.1109/ICDCS.1995.500023)
//! reproduction.
//!
//! The paper assumes a signature scheme with three properties (its §2):
//!
//! * **S1** — a node can produce `{m}_S` iff it knows the secret key `S`
//!   and the message `m`;
//! * **S2** — for each secret key `S_i` there is a public *test predicate*
//!   `T_i` with `T_i({m}_S) = true ⇔ S = S_i`;
//! * **S3** — `S_i` cannot be extracted from signed messages or from `T_i`.
//!
//! and cites DSA and RSA as schemes satisfying them with high probability.
//! This crate provides both families, built entirely on [`fd_bigint`]:
//!
//! * [`mod@sha256`] / [`hmac`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC.
//! * [`chacha20`] / [`ChaChaDrbg`] — RFC 8439 ChaCha20 core used as a
//!   deterministic random bit generator for key generation.
//! * [`SchnorrGroup`] / [`SchnorrScheme`] — Schnorr signatures over
//!   DSA-style prime-order subgroups (the DSA family the paper cites).
//! * [`RsaScheme`] — RSA hash-and-sign with PKCS#1-v1.5-shaped padding.
//! * [`SignatureScheme`] — the object-safe trait the protocol layer uses;
//!   public keys double as the paper's *test predicates*.
//! * [`ToyScheme`] — a deliberately broken scheme (violates S1/S3) used by
//!   the adversarial test-suite to check what the protocols do when the
//!   signature assumption itself fails.
//!
//! The protocol layer consumes this crate through [`SignatureScheme`]
//! alone: the Fig. 1 key distribution exchanges public keys as test
//! predicates and proves possession by signing challenges, and the §4
//! chain signatures stack [`SignatureScheme::sign`] layers with the
//! name-embedding rule checked by Theorem 4.
//!
//! Everything is deterministic given a seed, which is what makes the
//! experiment tables in `EXPERIMENTS.md` reproducible bit-for-bit.
//!
//! ## Example
//!
//! ```
//! use fd_crypto::{SchnorrScheme, SignatureScheme};
//!
//! let scheme = SchnorrScheme::test_tiny();
//! let (sk, pk) = scheme.keypair_from_seed(7);
//! let sig = scheme.sign(&sk, b"hello")?;
//! assert!(scheme.verify(&pk, b"hello", &sig));
//! assert!(!scheme.verify(&pk, b"tampered", &sig));
//! # Ok::<(), fd_crypto::CryptoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
mod drbg;
mod dsa;
mod error;
mod group;
pub mod hmac;
mod rsa;
mod scheme;
mod schnorr;
pub mod sha256;
mod toy;

pub use drbg::ChaChaDrbg;
pub use dsa::DsaScheme;
pub use error::CryptoError;
pub use group::SchnorrGroup;
pub use rsa::RsaScheme;
pub use scheme::{PublicKey, SecretKey, Signature, SignatureScheme};
pub use schnorr::SchnorrScheme;
pub use sha256::{sha256, Sha256};
pub use toy::ToyScheme;
