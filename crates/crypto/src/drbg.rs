//! Deterministic random bit generator built on ChaCha20.
//!
//! Key generation in the reproduction must be deterministic per seed (every
//! experiment row is regenerable), yet statistically indistinguishable from
//! random. A ChaCha20 keystream keyed by `SHA-256(seed material)` provides
//! both.

use crate::chacha20::chacha20_block;
use crate::sha256::sha256;
use fd_bigint::RandomUbig;

/// ChaCha20-based deterministic random bit generator.
///
/// ```
/// use fd_crypto::ChaChaDrbg;
/// let mut a = ChaChaDrbg::from_seed(1);
/// let mut b = ChaChaDrbg::from_seed(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct ChaChaDrbg {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    buf: [u8; 64],
    /// Next unread offset into `buf`; 64 means "refill needed".
    pos: usize,
}

impl ChaChaDrbg {
    /// Seed from a 64-bit seed (expanded through SHA-256).
    pub fn from_seed(seed: u64) -> Self {
        Self::from_seed_material(&seed.to_be_bytes())
    }

    /// Seed from arbitrary bytes (expanded through SHA-256).
    pub fn from_seed_material(material: &[u8]) -> Self {
        let digest = sha256(material);
        let mut key = [0u32; 8];
        for (i, chunk) in digest.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaChaDrbg {
            key,
            nonce: [0x44524247, 0, 0], // "DRBG"
            counter: 0,
            buf: [0; 64],
            pos: 64,
        }
    }

    /// Derive an independent child generator (domain-separated).
    pub fn fork(&mut self, label: &[u8]) -> ChaChaDrbg {
        let mut material = Vec::with_capacity(40 + label.len());
        material.extend_from_slice(b"fork");
        material.extend_from_slice(label);
        let mut fresh = [0u8; 32];
        self.fill_bytes(&mut fresh);
        material.extend_from_slice(&fresh);
        ChaChaDrbg::from_seed_material(&material)
    }

    fn refill(&mut self) {
        self.buf = chacha20_block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.wrapping_add(1);
        if self.counter == 0 {
            // 256 GiB of output: bump the nonce rather than repeat.
            self.nonce[1] = self.nonce[1].wrapping_add(1);
        }
        self.pos = 0;
    }

    /// Fill `out` with keystream bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            if self.pos == 64 {
                self.refill();
            }
            let take = (64 - self.pos).min(out.len() - written);
            out[written..written + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
            written += take;
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }
}

impl RandomUbig for ChaChaDrbg {
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_bigint::Ubig;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaChaDrbg::from_seed(42);
        let mut b = ChaChaDrbg::from_seed(42);
        let mut x = [0u8; 100];
        let mut y = [0u8; 100];
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaDrbg::from_seed(1);
        let mut b = ChaChaDrbg::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unaligned_reads_match_aligned() {
        let mut a = ChaChaDrbg::from_seed(9);
        let mut b = ChaChaDrbg::from_seed(9);
        let mut big = [0u8; 130];
        a.fill_bytes(&mut big);
        let mut pieces = Vec::new();
        for chunk_len in [1usize, 63, 64, 2] {
            let mut c = vec![0u8; chunk_len];
            b.fill_bytes(&mut c);
            pieces.extend_from_slice(&c);
        }
        assert_eq!(&big[..], &pieces[..]);
    }

    #[test]
    fn forks_are_independent() {
        let mut parent = ChaChaDrbg::from_seed(5);
        let mut c1 = parent.fork(b"a");
        let mut c2 = parent.fork(b"a"); // same label, later state -> distinct
        let mut c3 = ChaChaDrbg::from_seed(5).fork(b"b");
        assert_ne!(c1.next_u64(), c2.next_u64());
        assert_ne!(
            ChaChaDrbg::from_seed(5).fork(b"a").next_u64(),
            c3.next_u64()
        );
    }

    #[test]
    fn random_ubig_integration() {
        let mut rng = ChaChaDrbg::from_seed(3);
        let bound = Ubig::from(1_000_000u64);
        for _ in 0..50 {
            assert!(rng.random_below(&bound) < bound);
        }
        let v = rng.random_bits(100);
        assert_eq!(v.bits(), 100);
    }

    #[test]
    fn rough_uniformity() {
        // Sanity: bytes should hit all 4 quartiles over 4096 samples.
        let mut rng = ChaChaDrbg::from_seed(11);
        let mut counts = [0usize; 4];
        let mut buf = [0u8; 4096];
        rng.fill_bytes(&mut buf);
        for b in buf {
            counts[(b / 64) as usize] += 1;
        }
        for c in counts {
            assert!(c > 800, "quartile count {c} too skewed");
        }
    }
}
