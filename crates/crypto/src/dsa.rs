//! DSA (Digital Signature Algorithm) over [`SchnorrGroup`]s.
//!
//! The paper cites the NIST Digital Signature Standard by name as a scheme
//! satisfying S1–S3 "with a sufficiently high probability" (§2, ref [5]).
//! This is the textbook DSA: signature `(r, s)` with
//! `r = (g^k mod p) mod q` and `s = k⁻¹·(H(m) + x·r) mod q`.
//!
//! Like [`crate::SchnorrScheme`], signing is deterministic (RFC 6979-style
//! nonce derivation from the secret key and message), so protocol runs
//! replay bit-for-bit from a seed. The rare `r = 0` / `s = 0` cases retry
//! with a counter folded into the nonce derivation, exactly as a
//! counter-mode RFC 6979 implementation would.

use crate::group::SchnorrGroup;
use crate::scheme::{PublicKey, SecretKey, Signature, SignatureScheme};
use crate::sha256::sha256_parts;
use crate::{ChaChaDrbg, CryptoError};
use fd_bigint::{modadd, modinv, modmul, RandomUbig, Ubig};

/// DSA signature scheme: `sk = x`, `pk = y = g^x mod p`, signature
/// `(r, s)` verified by recomputing `r` from `(g^{H(m)·s⁻¹} · y^{r·s⁻¹} mod
/// p) mod q`.
///
/// ```
/// use fd_crypto::{DsaScheme, SignatureScheme};
/// let scheme = DsaScheme::test_tiny();
/// let (sk, pk) = scheme.keypair_from_seed(1);
/// let sig = scheme.sign(&sk, b"value: 42")?;
/// assert!(scheme.verify(&pk, b"value: 42", &sig));
/// # Ok::<(), fd_crypto::CryptoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DsaScheme {
    group: &'static SchnorrGroup,
}

impl DsaScheme {
    /// Scheme over an explicit (static) group.
    pub fn new(group: &'static SchnorrGroup) -> Self {
        DsaScheme { group }
    }

    /// Tiny test parameters (see [`SchnorrGroup::test_tiny`]).
    pub fn test_tiny() -> Self {
        Self::new(SchnorrGroup::test_tiny())
    }

    /// Historical DSA-size parameters (512/160) — the sizes of the original
    /// 1994 Digital Signature Standard the paper cites.
    pub fn s512() -> Self {
        Self::new(SchnorrGroup::s512())
    }

    /// 1024/160 parameters (FIPS 186-2 sizes).
    pub fn s1024() -> Self {
        Self::new(SchnorrGroup::s1024())
    }

    /// Modern-size parameters (2048/256).
    pub fn s2048() -> Self {
        Self::new(SchnorrGroup::s2048())
    }

    /// The underlying group.
    pub fn group(&self) -> &'static SchnorrGroup {
        self.group
    }

    fn decode_scalar(&self, bytes: &[u8]) -> Option<Ubig> {
        if bytes.len() != self.group.scalar_len() {
            return None;
        }
        let v = Ubig::from_be_bytes(bytes);
        (v < *self.group.q()).then_some(v)
    }

    /// `H(m) mod q`, the truncated message digest DSA signs.
    fn digest_scalar(&self, msg: &[u8]) -> Ubig {
        let digest = sha256_parts(&[b"fd-dsa-v1", self.group.label().as_bytes(), msg]);
        &Ubig::from_be_bytes(&digest) % self.group.q()
    }

    /// Deterministic nonce for attempt `ctr`, uniform-ish in `[1, q)`.
    fn nonce(&self, sk: &[u8], msg: &[u8], ctr: u32) -> Ubig {
        let digest = sha256_parts(&[
            b"fd-dsa-nonce-v1",
            self.group.label().as_bytes(),
            sk,
            msg,
            &ctr.to_be_bytes(),
        ]);
        let k = &Ubig::from_be_bytes(&digest) % self.group.q();
        if k.is_zero() {
            Ubig::one()
        } else {
            k
        }
    }
}

impl SignatureScheme for DsaScheme {
    fn name(&self) -> String {
        format!("dsa-{}", self.group.label())
    }

    fn keypair_from_seed(&self, seed: u64) -> (SecretKey, PublicKey) {
        let mut material = Vec::new();
        material.extend_from_slice(b"dsa-keygen");
        material.extend_from_slice(self.group.label().as_bytes());
        material.extend_from_slice(&seed.to_be_bytes());
        let mut rng = ChaChaDrbg::from_seed_material(&material);
        let one = Ubig::one();
        // x uniform in [1, q)
        let x = &rng.random_below(&(self.group.q() - &one)) + &one;
        let y = self.group.pow(self.group.g(), &x);
        let sk = x
            .to_be_bytes_fixed(self.group.scalar_len())
            .expect("x < q fits scalar width");
        let pk = y
            .to_be_bytes_fixed(self.group.element_len())
            .expect("y < p fits element width");
        (SecretKey(sk), PublicKey(pk))
    }

    fn sign(&self, sk: &SecretKey, msg: &[u8]) -> Result<Signature, CryptoError> {
        let x = self
            .decode_scalar(&sk.0)
            .ok_or(CryptoError::MalformedSecretKey)?;
        let q = self.group.q();
        let h = self.digest_scalar(msg);
        // Retry (with a counter in the nonce derivation) on the measure-zero
        // r = 0 or s = 0 outcomes, as FIPS 186 prescribes.
        for ctr in 0..64u32 {
            let k = self.nonce(&sk.0, msg, ctr);
            let r = &self.group.pow(self.group.g(), &k) % q;
            if r.is_zero() {
                continue;
            }
            let k_inv = modinv(&k, q).expect("q prime, 0 < k < q");
            let s = modmul(&k_inv, &modadd(&h, &modmul(&x, &r, q), q), q);
            if s.is_zero() {
                continue;
            }
            let mut sig = r.to_be_bytes_fixed(self.group.scalar_len()).expect("r < q");
            sig.extend_from_slice(&s.to_be_bytes_fixed(self.group.scalar_len()).expect("s < q"));
            return Ok(Signature(sig));
        }
        // Unreachable in practice: each attempt fails with prob ~2/q.
        Err(CryptoError::MalformedSecretKey)
    }

    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        let scalar_len = self.group.scalar_len();
        if sig.0.len() != 2 * scalar_len || pk.0.len() != self.group.element_len() {
            return false;
        }
        let y = Ubig::from_be_bytes(&pk.0);
        if y.is_zero() || y >= *self.group.p() {
            return false;
        }
        let (r, s) = match (
            self.decode_scalar(&sig.0[..scalar_len]),
            self.decode_scalar(&sig.0[scalar_len..]),
        ) {
            (Some(r), Some(s)) => (r, s),
            _ => return false,
        };
        if r.is_zero() || s.is_zero() {
            return false;
        }
        let q = self.group.q();
        let w = match modinv(&s, q) {
            Some(w) => w,
            None => return false,
        };
        let u1 = modmul(&self.digest_scalar(msg), &w, q);
        let u2 = modmul(&r, &w, q);
        // v = (g^u1 · y^u2 mod p) mod q
        let v = &self.group.mul(
            &self.group.pow(self.group.g(), &u1),
            &self.group.pow(&y, &u2),
        ) % q;
        v == r
    }

    fn public_key_len(&self) -> usize {
        self.group.element_len()
    }

    fn signature_len(&self) -> usize {
        2 * self.group.scalar_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> DsaScheme {
        DsaScheme::test_tiny()
    }

    #[test]
    fn sign_verify_round_trip() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"message").unwrap();
        assert!(s.verify(&pk, b"message", &sig));
    }

    #[test]
    fn rejects_wrong_message() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"message").unwrap();
        assert!(!s.verify(&pk, b"other", &sig));
    }

    #[test]
    fn rejects_wrong_key_s2() {
        // Property S2: T_i({m}_S) = true iff S = S_i.
        let s = scheme();
        let (sk1, _) = s.keypair_from_seed(1);
        let (_, pk2) = s.keypair_from_seed(2);
        let sig = s.sign(&sk1, b"message").unwrap();
        assert!(!s.verify(&pk2, b"message", &sig));
    }

    #[test]
    fn rejects_tampered_signature() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"message").unwrap();
        for i in 0..sig.0.len() {
            let mut bad = sig.clone();
            bad.0[i] ^= 0x01;
            assert!(!s.verify(&pk, b"message", &bad), "byte {i}");
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"m").unwrap();
        assert!(!s.verify(&PublicKey(vec![]), b"m", &sig));
        assert!(!s.verify(&pk, b"m", &Signature(vec![1, 2, 3])));
        assert!(!s.verify(&PublicKey(vec![0; s.public_key_len()]), b"m", &sig));
        // All-zero (r, s) is structurally well-sized but invalid.
        assert!(!s.verify(&pk, b"m", &Signature(vec![0; s.signature_len()])));
        assert!(s.sign(&SecretKey(vec![9; 99]), b"m").is_err());
    }

    #[test]
    fn deterministic_keys_and_signatures() {
        let s = scheme();
        let (sk_a, pk_a) = s.keypair_from_seed(7);
        let (sk_b, pk_b) = s.keypair_from_seed(7);
        assert_eq!(pk_a, pk_b);
        assert_eq!(s.sign(&sk_a, b"x").unwrap(), s.sign(&sk_b, b"x").unwrap());
    }

    #[test]
    fn different_seeds_different_keys() {
        let s = scheme();
        let (_, pk1) = s.keypair_from_seed(1);
        let (_, pk2) = s.keypair_from_seed(2);
        assert_ne!(pk1, pk2);
    }

    #[test]
    fn dsa_and_schnorr_keys_differ_for_same_seed() {
        // Domain separation: the two DSA-family schemes must not share key
        // material even over the same group.
        let dsa = scheme();
        let schnorr = crate::SchnorrScheme::test_tiny();
        let (_, pk_d) = dsa.keypair_from_seed(5);
        let (_, pk_s) = schnorr.keypair_from_seed(5);
        assert_ne!(pk_d, pk_s);
    }

    #[test]
    fn schnorr_cannot_verify_dsa_signatures() {
        let dsa = scheme();
        let schnorr = crate::SchnorrScheme::test_tiny();
        let (sk, pk) = dsa.keypair_from_seed(6);
        let sig = dsa.sign(&sk, b"m").unwrap();
        assert!(!schnorr.verify(&pk, b"m", &sig));
    }

    #[test]
    fn lengths_advertised_match_actual() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(3);
        let sig = s.sign(&sk, b"z").unwrap();
        assert_eq!(pk.0.len(), s.public_key_len());
        assert_eq!(sig.0.len(), s.signature_len());
    }

    #[test]
    fn empty_message_signs() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(4);
        let sig = s.sign(&sk, b"").unwrap();
        assert!(s.verify(&pk, b"", &sig));
        assert!(!s.verify(&pk, b"a", &sig));
    }

    #[test]
    fn many_messages_round_trip() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(9);
        for i in 0..32u8 {
            let msg = vec![i; (i as usize % 7) + 1];
            let sig = s.sign(&sk, &msg).unwrap();
            assert!(s.verify(&pk, &msg, &sig), "msg {i}");
        }
    }

    #[test]
    fn name_mentions_group() {
        assert_eq!(scheme().name(), "dsa-tiny-96/48");
    }
}
