//! HMAC-SHA-256 (RFC 2104), verified against RFC 4231 test vectors.
//!
//! Not used by the signature schemes directly, but part of the substrate: the
//! deterministic nonce derivation in [`crate::SchnorrScheme`] is HMAC-shaped
//! (RFC 6979-style), and tests use HMAC as a keyed oracle.

use crate::sha256::{sha256, Sha256};

/// Compute `HMAC-SHA256(key, data)`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 4231 test case 1
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe")
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than block size
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"msg"), hmac_sha256(b"k2", b"msg"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
