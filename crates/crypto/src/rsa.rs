//! RSA hash-and-sign — the second signature family the paper cites.
//!
//! Keys are generated from scratch (Miller–Rabin prime search over
//! [`fd_bigint`]); signing pads `SHA-256(m)` in a PKCS#1-v1.5 shape when the
//! modulus is large enough and falls back to `H(m) mod n` for the tiny test
//! moduli. As elsewhere, only the S1–S3 *interface* matters to the protocol
//! layer.

use crate::scheme::{PublicKey, SecretKey, Signature, SignatureScheme};
use crate::sha256::sha256;
use crate::{ChaChaDrbg, CryptoError};
use fd_bigint::{gcd, modinv, modpow, prime, Ubig};

/// Public exponent: F4 = 65537.
const E: u64 = 65537;

/// RSA signature scheme with `bits`-bit moduli.
///
/// ```
/// use fd_crypto::{RsaScheme, SignatureScheme};
/// let scheme = RsaScheme::new(256); // tiny test size
/// let (sk, pk) = scheme.keypair_from_seed(9);
/// let sig = scheme.sign(&sk, b"paper")?;
/// assert!(scheme.verify(&pk, b"paper", &sig));
/// # Ok::<(), fd_crypto::CryptoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RsaScheme {
    bits: usize,
}

impl RsaScheme {
    /// Create a scheme generating `bits`-bit moduli (min 128; use ≥ 2048
    /// for anything resembling real security — small sizes are for tests).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 128`.
    pub fn new(bits: usize) -> Self {
        assert!(bits >= 128, "RSA modulus below 128 bits is not supported");
        RsaScheme { bits }
    }

    /// Modulus byte length.
    fn n_len(&self) -> usize {
        self.bits.div_ceil(8)
    }

    /// EMSA-PKCS1-v1.5-shaped encoding of the message digest, as an integer
    /// below `n`. For moduli too small to hold the padding (< 38 bytes) the
    /// digest is reduced mod `n` instead.
    fn encode_digest(&self, msg: &[u8], n: &Ubig) -> Ubig {
        let digest = sha256(msg);
        let len = self.n_len();
        if len >= 38 {
            // 0x00 0x01 FF..FF 0x00 || digest
            let mut em = Vec::with_capacity(len);
            em.push(0x00);
            em.push(0x01);
            em.resize(len - 33, 0xff);
            em.push(0x00);
            em.extend_from_slice(&digest);
            debug_assert_eq!(em.len(), len);
            Ubig::from_be_bytes(&em)
        } else {
            &Ubig::from_be_bytes(&digest) % n
        }
    }

    fn decode_sk(&self, sk: &SecretKey) -> Option<(Ubig, Ubig)> {
        let len = self.n_len();
        if sk.0.len() != 2 * len {
            return None;
        }
        let n = Ubig::from_be_bytes(&sk.0[..len]);
        let d = Ubig::from_be_bytes(&sk.0[len..]);
        (!n.is_zero() && d < n).then_some((n, d))
    }
}

impl SignatureScheme for RsaScheme {
    fn name(&self) -> String {
        format!("rsa-{}", self.bits)
    }

    fn keypair_from_seed(&self, seed: u64) -> (SecretKey, PublicKey) {
        let mut material = Vec::new();
        material.extend_from_slice(b"rsa-keygen");
        material.extend_from_slice(&(self.bits as u64).to_be_bytes());
        material.extend_from_slice(&seed.to_be_bytes());
        let mut rng = ChaChaDrbg::from_seed_material(&material);
        let half = self.bits / 2;
        let one = Ubig::one();
        let e = Ubig::from(E);
        loop {
            let p = prime::gen_prime(half, &mut rng);
            let q = prime::gen_prime(self.bits - half, &mut rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bits() != self.bits {
                continue;
            }
            let phi = &(&p - &one) * &(&q - &one);
            if !gcd(&e, &phi).is_one() {
                continue;
            }
            let d = modinv(&e, &phi).expect("gcd(e, phi) = 1");
            let len = self.n_len();
            let n_bytes = n.to_be_bytes_fixed(len).expect("n has bits width");
            let mut sk = n_bytes.clone();
            sk.extend_from_slice(&d.to_be_bytes_fixed(len).expect("d < n"));
            return (SecretKey(sk), PublicKey(n_bytes));
        }
    }

    fn sign(&self, sk: &SecretKey, msg: &[u8]) -> Result<Signature, CryptoError> {
        let (n, d) = self.decode_sk(sk).ok_or(CryptoError::MalformedSecretKey)?;
        let m_int = self.encode_digest(msg, &n);
        let s = modpow(&m_int, &d, &n);
        Ok(Signature(s.to_be_bytes_fixed(self.n_len()).expect("s < n")))
    }

    fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        let len = self.n_len();
        if pk.0.len() != len || sig.0.len() != len {
            return false;
        }
        let n = Ubig::from_be_bytes(&pk.0);
        if n.is_zero() {
            return false;
        }
        let s = Ubig::from_be_bytes(&sig.0);
        if s >= n {
            return false;
        }
        let recovered = modpow(&s, &Ubig::from(E), &n);
        recovered == self.encode_digest(msg, &n)
    }

    fn public_key_len(&self) -> usize {
        self.n_len()
    }

    fn signature_len(&self) -> usize {
        self.n_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> RsaScheme {
        RsaScheme::new(256)
    }

    #[test]
    fn sign_verify_round_trip() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"hello rsa").unwrap();
        assert!(s.verify(&pk, b"hello rsa", &sig));
        assert!(!s.verify(&pk, b"hello rsb", &sig));
    }

    #[test]
    fn cross_key_rejection() {
        let s = scheme();
        let (sk1, _) = s.keypair_from_seed(1);
        let (_, pk2) = s.keypair_from_seed(2);
        let sig = s.sign(&sk1, b"m").unwrap();
        assert!(!s.verify(&pk2, b"m", &sig));
    }

    #[test]
    fn deterministic_keygen() {
        let s = scheme();
        assert_eq!(s.keypair_from_seed(5).1, s.keypair_from_seed(5).1);
        assert_ne!(s.keypair_from_seed(5).1, s.keypair_from_seed(6).1);
    }

    #[test]
    fn pkcs_padding_path_with_large_modulus() {
        // 384-bit modulus (48 bytes >= 38) exercises the PKCS#1 branch.
        let s = RsaScheme::new(384);
        let (sk, pk) = s.keypair_from_seed(3);
        let sig = s.sign(&sk, b"padded").unwrap();
        assert!(s.verify(&pk, b"padded", &sig));
        assert!(!s.verify(&pk, b"padded!", &sig));
    }

    #[test]
    fn malformed_inputs_rejected() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(1);
        let sig = s.sign(&sk, b"m").unwrap();
        assert!(s.sign(&SecretKey(vec![1, 2]), b"m").is_err());
        assert!(!s.verify(&PublicKey(vec![0; 7]), b"m", &sig));
        assert!(!s.verify(&pk, b"m", &Signature(vec![0; 7])));
        // signature >= n rejected
        assert!(!s.verify(&pk, b"m", &Signature(vec![0xff; s.signature_len()])));
    }

    #[test]
    fn tampered_signature_rejected() {
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(2);
        let mut sig = s.sign(&sk, b"m").unwrap();
        sig.0[10] ^= 0x40;
        assert!(!s.verify(&pk, b"m", &sig));
    }

    #[test]
    #[should_panic(expected = "128 bits")]
    fn rejects_tiny_modulus() {
        let _ = RsaScheme::new(64);
    }

    #[test]
    fn textbook_consistency() {
        // sign then verify equals identity on the padded integer:
        // (m^d)^e = m mod n.
        let s = scheme();
        let (sk, pk) = s.keypair_from_seed(7);
        let (n, d) = s.decode_sk(&sk).unwrap();
        assert_eq!(Ubig::from_be_bytes(&pk.0), n);
        let m = Ubig::from(0xabcdef123456u64);
        let c = modpow(&m, &d, &n);
        assert_eq!(modpow(&c, &Ubig::from(E), &n), m);
    }
}
