//! Schnorr group parameters (DSA-style prime-order subgroups).
//!
//! Groups are generated at first use from fixed seeds and cached, so the
//! repository carries no magic constants yet every run sees identical
//! parameters. Presets range from `test_tiny` (fast unit tests) to
//! `s2048` (realistic key sizes for the timing benchmarks, experiment F2).

use fd_bigint::{modpow, prime, MontCtx, SplitMix64, Ubig};
use std::sync::OnceLock;

/// A multiplicative group `Z_p^*` with a generator `g` of prime order `q`.
///
/// Standard DSA/Schnorr parameter shape: `p = c·q + 1` with `p`, `q` prime.
/// The discrete logarithm in the order-`q` subgroup is the hardness
/// assumption backing the paper's S1/S3.
#[derive(Debug, Clone)]
pub struct SchnorrGroup {
    p: Ubig,
    q: Ubig,
    g: Ubig,
    mont_p: MontCtx,
    label: &'static str,
}

impl SchnorrGroup {
    /// Generate a fresh group with the given sizes from a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `p_bits <= q_bits + 1`.
    pub fn generate(p_bits: usize, q_bits: usize, seed: u64, label: &'static str) -> Self {
        let mut rng = SplitMix64::new(seed);
        let (p, q) = prime::gen_schnorr_pair(p_bits, q_bits, &mut rng);
        let one = Ubig::one();
        let cofactor = &(&p - &one) / &q;
        // Find a generator of the order-q subgroup.
        let mut h = Ubig::from(2u64);
        let g = loop {
            let candidate = modpow(&h, &cofactor, &p);
            if !candidate.is_one() && !candidate.is_zero() {
                break candidate;
            }
            h = &h + &one;
        };
        let mont_p = MontCtx::new(&p).expect("p is an odd prime");
        SchnorrGroup {
            p,
            q,
            g,
            mont_p,
            label,
        }
    }

    /// Tiny parameters (96-bit `p`, 48-bit `q`) for fast unit tests.
    /// **Not secure** — the protocol logic, not the cryptography, is under
    /// test at this size.
    pub fn test_tiny() -> &'static SchnorrGroup {
        static G: OnceLock<SchnorrGroup> = OnceLock::new();
        G.get_or_init(|| SchnorrGroup::generate(96, 48, 0x7e57_0001, "tiny-96/48"))
    }

    /// 512-bit `p`, 160-bit `q` — the historical DSA baseline; default for
    /// simulation benchmarks.
    pub fn s512() -> &'static SchnorrGroup {
        static G: OnceLock<SchnorrGroup> = OnceLock::new();
        G.get_or_init(|| SchnorrGroup::generate(512, 160, 0x5ee4_0512, "s512/160"))
    }

    /// 1024-bit `p`, 160-bit `q`.
    pub fn s1024() -> &'static SchnorrGroup {
        static G: OnceLock<SchnorrGroup> = OnceLock::new();
        G.get_or_init(|| SchnorrGroup::generate(1024, 160, 0x5ee4_1024, "s1024/160"))
    }

    /// 2048-bit `p`, 256-bit `q` — modern-ish sizes for the crypto-cost
    /// benchmark (experiment F2).
    pub fn s2048() -> &'static SchnorrGroup {
        static G: OnceLock<SchnorrGroup> = OnceLock::new();
        G.get_or_init(|| SchnorrGroup::generate(2048, 256, 0x5ee4_2048, "s2048/256"))
    }

    /// The modulus `p`.
    pub fn p(&self) -> &Ubig {
        &self.p
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> &Ubig {
        &self.q
    }

    /// The generator `g` (order `q`).
    pub fn g(&self) -> &Ubig {
        &self.g
    }

    /// Human-readable label, e.g. `"s512/160"`.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Byte length of a serialized group element (`p`-sized).
    pub fn element_len(&self) -> usize {
        self.p.bits().div_ceil(8)
    }

    /// Byte length of a serialized scalar (`q`-sized).
    pub fn scalar_len(&self) -> usize {
        self.q.bits().div_ceil(8)
    }

    /// `base^exp mod p` using the cached Montgomery context.
    pub fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        self.mont_p.modpow(base, exp)
    }

    /// `a·b mod p` using the cached Montgomery context.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        self.mont_p.mul(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_group_is_well_formed() {
        let g = SchnorrGroup::test_tiny();
        assert_eq!(g.p().bits(), 96);
        assert_eq!(g.q().bits(), 48);
        // q | p - 1
        let pm1 = g.p() - &Ubig::one();
        assert!((&pm1 % g.q()).is_zero());
        // g has order q: g^q = 1, g != 1
        assert!(!g.g().is_one());
        assert!(g.pow(g.g(), g.q()).is_one());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SchnorrGroup::generate(96, 48, 123, "a");
        let b = SchnorrGroup::generate(96, 48, 123, "b");
        assert_eq!(a.p(), b.p());
        assert_eq!(a.q(), b.q());
        assert_eq!(a.g(), b.g());
    }

    #[test]
    fn distinct_seeds_distinct_groups() {
        let a = SchnorrGroup::generate(96, 48, 1, "a");
        let b = SchnorrGroup::generate(96, 48, 2, "b");
        assert_ne!(a.p(), b.p());
    }

    #[test]
    fn element_and_scalar_lengths() {
        let g = SchnorrGroup::test_tiny();
        assert_eq!(g.element_len(), 12); // 96 bits
        assert_eq!(g.scalar_len(), 6); // 48 bits
    }

    #[test]
    fn pow_matches_free_function() {
        let g = SchnorrGroup::test_tiny();
        let e = Ubig::from(12345u64);
        assert_eq!(g.pow(g.g(), &e), modpow(g.g(), &e, g.p()));
    }
}
