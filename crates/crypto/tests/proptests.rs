//! Property-based tests for the crypto substrate: S1–S3 behaviour of every
//! scheme over arbitrary messages, seeds, and tampering.

use fd_crypto::{PublicKey, RsaScheme, SchnorrScheme, Signature, SignatureScheme, ToyScheme};
use proptest::prelude::*;

fn schemes() -> Vec<Box<dyn SignatureScheme>> {
    vec![
        Box::new(SchnorrScheme::test_tiny()),
        Box::new(RsaScheme::new(256)),
        Box::new(ToyScheme::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sign_verify_soundness(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..200)) {
        for s in schemes() {
            let (sk, pk) = s.keypair_from_seed(seed);
            let sig = s.sign(&sk, &msg).unwrap();
            prop_assert!(s.verify(&pk, &msg, &sig), "{}", s.name());
        }
    }

    #[test]
    fn cross_key_rejection_s2(seed1 in any::<u64>(), seed2 in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..100)) {
        prop_assume!(seed1 != seed2);
        for s in schemes() {
            let (sk1, pk1) = s.keypair_from_seed(seed1);
            let (_, pk2) = s.keypair_from_seed(seed2);
            prop_assume!(pk1 != pk2);
            let sig = s.sign(&sk1, &msg).unwrap();
            prop_assert!(!s.verify(&pk2, &msg, &sig), "{}", s.name());
        }
    }

    #[test]
    fn message_binding(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 1..100), flip in any::<usize>()) {
        for s in schemes() {
            let (sk, pk) = s.keypair_from_seed(seed);
            let sig = s.sign(&sk, &msg).unwrap();
            let mut other = msg.clone();
            other[flip % msg.len()] ^= 0x01;
            prop_assert!(!s.verify(&pk, &other, &sig), "{}", s.name());
        }
    }

    #[test]
    fn signature_tamper_rejection(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..50), byte in any::<usize>(), bit in 0u8..8) {
        // Schnorr + RSA only: the toy scheme is broken by design but its
        // sig is a hash, so tampering still fails; include all three.
        for s in schemes() {
            let (sk, pk) = s.keypair_from_seed(seed);
            let sig = s.sign(&sk, &msg).unwrap();
            let mut bad = sig.clone();
            let i = byte % bad.0.len();
            bad.0[i] ^= 1 << bit;
            prop_assert!(!s.verify(&pk, &msg, &bad), "{}", s.name());
        }
    }

    #[test]
    fn garbage_never_verifies(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..50), garbage in prop::collection::vec(any::<u8>(), 0..80)) {
        for s in schemes() {
            let (_, pk) = s.keypair_from_seed(seed);
            // Random bytes as signature: overwhelmingly must not verify.
            prop_assert!(!s.verify(&pk, &msg, &Signature(garbage.clone())), "{}", s.name());
        }
    }

    #[test]
    fn garbage_public_keys_never_panic(pk_bytes in prop::collection::vec(any::<u8>(), 0..80), msg in prop::collection::vec(any::<u8>(), 0..50)) {
        for s in schemes() {
            let (sk, _) = s.keypair_from_seed(1);
            let sig = s.sign(&sk, &msg).unwrap();
            // Must not panic, whatever it returns.
            let _ = s.verify(&PublicKey(pk_bytes.clone()), &msg, &sig);
        }
    }

    #[test]
    fn keygen_deterministic(seed in any::<u64>()) {
        for s in schemes() {
            let (_, pk1) = s.keypair_from_seed(seed);
            let (_, pk2) = s.keypair_from_seed(seed);
            prop_assert_eq!(pk1, pk2, "{}", s.name());
        }
    }
}
