//! Cross-scheme isolation: no scheme may verify another scheme's
//! signatures or accept another scheme's keys, even when they share group
//! parameters (Schnorr and DSA both live in the same DSA-style groups).

use fd_crypto::{DsaScheme, RsaScheme, SchnorrScheme, SignatureScheme, ToyScheme};

fn schemes() -> Vec<Box<dyn SignatureScheme>> {
    vec![
        Box::new(SchnorrScheme::test_tiny()),
        Box::new(DsaScheme::test_tiny()),
        Box::new(RsaScheme::new(512)),
        Box::new(ToyScheme::new()),
    ]
}

#[test]
fn signatures_never_verify_across_schemes() {
    let all = schemes();
    for signer in &all {
        let (sk, _) = signer.keypair_from_seed(7);
        let sig = signer.sign(&sk, b"cross").unwrap();
        for verifier in &all {
            if verifier.name() == signer.name() {
                continue;
            }
            // Keys from the verifier's own world must still reject the
            // foreign signature.
            let (_, pk) = verifier.keypair_from_seed(7);
            assert!(
                !verifier.verify(&pk, b"cross", &sig),
                "{} verified a {} signature",
                verifier.name(),
                signer.name()
            );
        }
    }
}

#[test]
fn foreign_public_keys_never_verify() {
    let all = schemes();
    for signer in &all {
        let (sk, pk) = signer.keypair_from_seed(9);
        let sig = signer.sign(&sk, b"m").unwrap();
        for verifier in &all {
            if verifier.name() == signer.name() {
                continue;
            }
            assert!(
                !verifier.verify(&pk, b"m", &sig),
                "{} accepted a {} key + signature",
                verifier.name(),
                signer.name()
            );
        }
    }
}

#[test]
fn every_scheme_reports_consistent_lengths() {
    for s in schemes() {
        let (sk, pk) = s.keypair_from_seed(3);
        let sig = s.sign(&sk, b"len").unwrap();
        assert_eq!(pk.0.len(), s.public_key_len(), "{}", s.name());
        assert_eq!(sig.0.len(), s.signature_len(), "{}", s.name());
    }
}
